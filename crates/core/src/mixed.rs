//! Mixed HTAP workload driver (§7.1): transactions and analytical
//! queries interleaved on one simulated timeline, the measurement setup
//! behind the throughput-frontier experiment (Fig. 10).
//!
//! The driver admits transactions in bursts between queries at a
//! configurable ratio, runs the configured defragmentation policy, and
//! reports both throughputs plus isolation diagnostics (how long CPU
//! access was blocked by load phases, how much consistency work queries
//! paid).

use pushtap_chbench::TxnGen;
use pushtap_olap::Query;
use pushtap_pim::Ps;

use crate::metrics::{qphh, tpmc};
use crate::system::Pushtap;

/// Configuration of a mixed run.
#[derive(Debug, Clone, Copy)]
pub struct MixConfig {
    /// Transactions admitted between consecutive analytical queries.
    pub txns_per_query: u64,
    /// Number of analytical queries to run (cycling Q1 → Q6 → Q9).
    pub queries: u64,
    /// Seed for the transaction stream.
    pub seed: u64,
}

impl Default for MixConfig {
    fn default() -> MixConfig {
        MixConfig {
            txns_per_query: 200,
            queries: 6,
            seed: 42,
        }
    }
}

/// Outcome of a mixed run.
#[derive(Debug, Clone, Copy, Default)]
pub struct MixReport {
    /// Transactions committed.
    pub txns: u64,
    /// Queries answered.
    pub queries: u64,
    /// Total simulated wall-clock.
    pub elapsed: Ps,
    /// Time inside transactions (excluding defrag pauses).
    pub txn_time: Ps,
    /// Time inside queries (scan + coordination).
    pub query_time: Ps,
    /// Consistency work (snapshots) paid by queries.
    pub consistency_time: Ps,
    /// Defragmentation pauses.
    pub defrag_time: Ps,
    /// CPU-blocked time during PIM load phases.
    pub cpu_blocked: Ps,
    /// Transaction attempts rolled back on delta pressure (`DeltaFull`),
    /// each re-executed atomically after defragmentation.
    pub aborts: u64,
    /// Distinct transactions that needed at least one retry.
    pub retried_txns: u64,
    /// Latency consumed by the rolled-back attempts — included in
    /// [`MixReport::txn_time`] (a retry charges its failed attempt to the
    /// transaction's completion time).
    pub wasted_retry_time: Ps,
}

impl MixReport {
    /// OLTP throughput over the whole run.
    pub fn tpmc(&self, cores: u32) -> f64 {
        tpmc(self.txns, self.elapsed, cores)
    }

    /// OLAP throughput over the whole run.
    pub fn qphh(&self) -> f64 {
        qphh(self.queries, self.elapsed)
    }

    /// Fraction of committed transactions that needed at least one
    /// delta-pressure retry.
    pub fn retry_rate(&self) -> f64 {
        if self.txns == 0 {
            0.0
        } else {
            self.retried_txns as f64 / self.txns as f64
        }
    }

    /// Share of wall-clock spent on consistency (freshness tax).
    pub fn consistency_share(&self) -> f64 {
        if self.elapsed == Ps::ZERO {
            0.0
        } else {
            (self.consistency_time + self.defrag_time).ps() as f64 / self.elapsed.ps() as f64
        }
    }
}

/// Runs the mixed workload on `system`.
pub fn run_mixed(system: &mut Pushtap, cfg: MixConfig) -> MixReport {
    let mut gen: TxnGen = system.txn_gen(cfg.seed);
    let mut report = MixReport::default();
    let start = system.now();
    for i in 0..cfg.queries {
        let oltp = system.run_txns(&mut gen, cfg.txns_per_query);
        report.txns += oltp.committed;
        report.txn_time += oltp.txn_time;
        report.defrag_time += oltp.defrag_time;
        report.aborts += oltp.aborts;
        report.retried_txns += oltp.retried_txns;
        report.wasted_retry_time += oltp.wasted_retry_time;

        let query = Query::ALL[(i % 3) as usize];
        let q = system.run_query(query);
        report.queries += 1;
        report.query_time += q.timing.end.saturating_sub(q.consistency);
        report.consistency_time += q.consistency;
        report.cpu_blocked += q.timing.cpu_blocked;
    }
    report.elapsed = system.now() - start;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::PushtapConfig;

    #[test]
    fn mixed_run_accounts_every_component() {
        let mut sys = Pushtap::new(PushtapConfig::small()).unwrap();
        let r = run_mixed(&mut sys, MixConfig::default());
        assert_eq!(r.txns, 1200);
        assert_eq!(r.queries, 6);
        assert!(r.elapsed > Ps::ZERO);
        // Components are all populated and bounded by the total.
        assert!(r.txn_time > Ps::ZERO);
        assert!(r.query_time > Ps::ZERO);
        assert!(r.consistency_time > Ps::ZERO);
        let parts = r.txn_time + r.query_time + r.consistency_time + r.defrag_time;
        assert!(parts <= r.elapsed.scale(1.01), "{parts} > {}", r.elapsed);
        assert!(r.tpmc(16) > 0.0);
        assert!(r.qphh() > 0.0);
        assert!(r.consistency_share() < 0.9);
    }

    /// More transactions per query shift the mix: OLTP throughput holds
    /// while per-query consistency grows (the isolation story of Fig. 10).
    #[test]
    fn heavier_oltp_mix_raises_consistency_per_query() {
        let mut light = Pushtap::new(PushtapConfig::small()).unwrap();
        let mut heavy = Pushtap::new(PushtapConfig::small()).unwrap();
        let l = run_mixed(
            &mut light,
            MixConfig {
                txns_per_query: 50,
                queries: 4,
                seed: 9,
            },
        );
        let h = run_mixed(
            &mut heavy,
            MixConfig {
                txns_per_query: 500,
                queries: 4,
                seed: 9,
            },
        );
        let per_query = |r: &MixReport| r.consistency_time / r.queries;
        assert!(per_query(&h) > per_query(&l));
        // OLTP throughput is not destroyed by queries in either mix.
        assert!(h.tpmc(16) > l.tpmc(16) * 0.5);
    }

    /// Determinism across the whole mixed pipeline.
    #[test]
    fn mixed_run_is_deterministic() {
        let run = || {
            let mut sys = Pushtap::new(PushtapConfig::small()).unwrap();
            let r = run_mixed(&mut sys, MixConfig::default());
            (r.elapsed, r.txn_time, r.consistency_time)
        };
        assert_eq!(run(), run());
    }
}
