//! Baselines of §7.3: the *ideal* scan model and the *multi-instance*
//! (MI, Polynesia-like) PIM HTAP design.
//!
//! **Ideal** assumes every scanned column is already perfectly compact on
//! the PIM side and charges only scan time — the lower bound in Fig. 9(b).
//!
//! **MI** keeps a row-store instance in host memory for OLTP and a
//! column-store instance in PIM memory for OLAP. Before a query it must
//! *rebuild* the column instance from the transaction log: all
//! new-versioned rows plus their metadata cross the memory bus, then the
//! PIM units merge them (§7.3's adaptation of [6] to the DIMM system).

use pushtap_chbench::Table;
use pushtap_olap::{Query, ScanEngine};
use pushtap_oltp::{DbConfig, DbFormat, TpccDb};
use pushtap_pim::{MemSystem, PimOpKind, Ps, Side, SystemConfig};

/// Ideal query-time model: compact columns, no consistency work, but the
/// same §6.3 CPU coordination (group-index shuffles, hash partitioning,
/// partial-result collection) that every PIM query execution pays.
#[derive(Debug, Clone)]
pub struct IdealModel {
    engine: ScanEngine,
    cpu: pushtap_pim::CpuSpec,
}

impl IdealModel {
    /// Builds the model for a system configuration and control
    /// architecture matching the compared systems.
    pub fn new(arch: pushtap_pim::ControlArch, cfg: &SystemConfig) -> IdealModel {
        IdealModel {
            engine: ScanEngine::new(arch, cfg),
            cpu: cfg.cpu,
        }
    }

    /// CPU-mediated inter-bank transfer of `bytes` (read + write streams).
    fn transfer(&self, mem: &mut MemSystem, bytes: u64, at: Ps) -> Ps {
        if bytes == 0 {
            return at;
        }
        let bursts = bytes.div_ceil(64);
        let mid = mem.stream_sampled(
            Side::Pim,
            pushtap_pim::BankAddr::new(0, 0, 0),
            0,
            bursts,
            16,
            pushtap_pim::Op::Read,
            64,
            at,
        );
        mem.stream_sampled(
            Side::Pim,
            pushtap_pim::BankAddr::new(1, 0, 1),
            0,
            bursts,
            16,
            pushtap_pim::Op::Write,
            64,
            mid,
        )
    }

    /// The underlying scan engine.
    pub fn engine(&self) -> &ScanEngine {
        &self.engine
    }

    /// Time to scan a perfectly-compact column of `rows` × `width` bytes.
    pub fn column_scan(
        &self,
        rows: u64,
        width: u32,
        op: PimOpKind,
        mem: &mut MemSystem,
        at: Ps,
    ) -> Ps {
        let total = self.engine.unit().round_to_wire(rows * width as u64);
        let per_unit = total.div_ceil(self.engine.units());
        self.engine
            .timed_phases(op, per_unit.max(8), total.max(8), 1.0, mem, at)
            .end
    }

    /// Ideal execution time of one of the three evaluation queries over a
    /// population scaled by `scale` (columns compact, CPU coordination
    /// identical to the real engine's task division).
    pub fn query_time(&self, query: Query, scale: f64, mem: &mut MemSystem, at: Ps) -> Ps {
        let ol = Table::OrderLine.rows_at_scale(scale);
        let it = Table::Item.rows_at_scale(scale);
        let units = self.engine.units();
        match query {
            Query::Q6 => {
                let mut t = self.column_scan(ol, 8, PimOpKind::Filter, mem, at);
                t = self.column_scan(ol, 2, PimOpKind::Filter, mem, t);
                t = self.column_scan(ol, 8, PimOpKind::Aggregate, mem, t);
                self.transfer(mem, units * 8, t) + self.cpu.cycles(units * 4)
            }
            Query::Q1 => {
                let mut t = self.column_scan(ol, 8, PimOpKind::Filter, mem, at);
                t = self.column_scan(ol, 1, PimOpKind::Group, mem, t);
                // Group-index shuffle: one index byte per row (§6.3).
                t = self.transfer(mem, ol, t);
                t = self.column_scan(ol, 2, PimOpKind::Aggregate, mem, t);
                t = self.column_scan(ol, 8, PimOpKind::Aggregate, mem, t);
                self.transfer(mem, units * 16 * 3, t) + self.cpu.cycles(units * 16 * 4)
            }
            Query::Q9 => {
                let mut t = self.column_scan(it, 4, PimOpKind::Hash, mem, at);
                t = self.column_scan(ol, 4, PimOpKind::Hash, mem, t);
                // Hash fetch + bucket partition + transfer back (§6.3).
                t = self.transfer(mem, 2 * (it + ol) * 4, t);
                t += self.cpu.cycles((it + ol) * 6);
                t = self.column_scan(it + ol, 4, PimOpKind::Join, mem, t);
                t = self.column_scan(ol, 8, PimOpKind::Aggregate, mem, t);
                self.transfer(mem, units * 7 * 8, t) + self.cpu.cycles(units * 7 * 4)
            }
        }
    }
}

/// The multi-instance baseline.
#[derive(Debug)]
pub struct MultiInstance {
    /// The OLTP row-store instance, resident in host memory.
    pub row_db: TpccDb,
    mem: MemSystem,
    ideal: IdealModel,
    scale: f64,
    /// Transactions committed since the last rebuild.
    staleness: u64,
    /// Synthetic staleness injected by analytic sweeps (no real rows).
    synthetic: u64,
    /// Version bytes whose chains were garbage-collected internally since
    /// the last rebuild (still owed to the column instance).
    pending_bytes: f64,
    now: Ps,
    /// Rebuild throughput modifier: 1.0 for the DIMM software path; the
    /// HBM variant's dedicated rebuild accelerator divides the rebuild
    /// cost (estimated from [6]'s relative numbers, §7.3).
    rebuild_speedup: f64,
}

impl MultiInstance {
    /// Builds the MI system: row instance in host memory (row-store
    /// format), column instance modelled as ideal compact columns.
    ///
    /// # Errors
    ///
    /// Propagates layout errors from the row instance build.
    pub fn new(
        mut db_cfg: DbConfig,
        system: SystemConfig,
        rebuild_speedup: f64,
    ) -> Result<MultiInstance, pushtap_format::LayoutError> {
        db_cfg.side = Side::Host;
        db_cfg.format = DbFormat::RowStore;
        let mem = MemSystem::new(system);
        let row_db = TpccDb::build(&db_cfg, &mem)?;
        Ok(MultiInstance {
            ideal: IdealModel::new(pushtap_pim::ControlArch::Pushtap, &system),
            scale: db_cfg.scale,
            row_db,
            mem,
            staleness: 0,
            synthetic: 0,
            pending_bytes: 0.0,
            now: Ps::ZERO,
            rebuild_speedup,
        })
    }

    /// The simulated clock.
    pub fn now(&self) -> Ps {
        self.now
    }

    fn live_version_bytes(&self) -> f64 {
        pushtap_chbench::ALL_TABLES
            .into_iter()
            .map(|t| {
                let table = self.row_db.table(t);
                table.live_delta_rows() as f64 * (table.layout().schema().row_width() as f64 + 16.0)
            })
            .sum()
    }

    /// Executes one transaction on the row instance.
    pub fn execute_txn(&mut self, txn: &pushtap_chbench::Txn) -> Ps {
        // The row instance periodically garbage-collects its own chains;
        // model by clearing when arenas fill. GC-ed versions are still
        // owed to the column instance, so their bytes stay pending.
        match self.row_db.execute(txn, &mut self.mem, self.now) {
            Ok(r) => {
                self.now = r.end;
            }
            Err(_) => {
                self.pending_bytes += self.live_version_bytes();
                let ts = self.row_db.last_ts();
                for t in pushtap_chbench::ALL_TABLES {
                    let model = pushtap_mvcc::DefragCostModel::new(16.0, 1e9, 3e9);
                    self.row_db.table_mut(t).defragment(
                        &model,
                        pushtap_mvcc::DefragStrategy::Cpu,
                        ts,
                    );
                }
                let r = self
                    .row_db
                    .execute(txn, &mut self.mem, self.now)
                    .expect("retry after GC");
                self.now = r.end;
            }
        }
        self.staleness += 1;
        self.now
    }

    /// Rebuild cost for the current staleness: ship every new-versioned
    /// row plus metadata over the bus, then merge on the PIM units
    /// (§7.3: "CPUs transfer all the new-versioned rows and corresponding
    /// metadata to DRAM banks, after which PIM units merge the metadata
    /// and copy the new-versioned data"). Computed from the row
    /// instance's actual delta state.
    pub fn rebuild_time(&self) -> Ps {
        let cfg = self.mem.cfg();
        let mut bytes = self.pending_bytes + self.live_version_bytes();
        // Analytic sweeps inject staleness without executing rows: use the
        // measured mix average (≈15 versions × ≈150 B each per txn).
        bytes += self.synthetic as f64 * 15.0 * 150.0;
        // Log shipping plus row writes are scattered-row transfers; same
        // effective-bandwidth derating as defragmentation.
        let bus = cfg.cpu_peak_bw() * 0.35;
        let pim = cfg.pim_peak_bw() * 0.25;
        let seconds = 2.0 * bytes / bus + bytes / pim;
        Ps::new((seconds * 1e12 / self.rebuild_speedup).round() as u64) + Ps::from_us(30.0)
    }

    /// Runs a query: rebuild first (data freshness), then ideal scans on
    /// the column instance. Returns (total, rebuild) durations. The
    /// rebuild consumes the row instance's log: its chains merge into the
    /// main storage.
    pub fn run_query(&mut self, query: Query) -> (Ps, Ps) {
        let rebuild = self.rebuild_time();
        self.staleness = 0;
        self.synthetic = 0;
        self.pending_bytes = 0.0;
        let ts = self.row_db.last_ts();
        let gc = pushtap_mvcc::DefragCostModel::new(16.0, 1e9, 3e9);
        for t in pushtap_chbench::ALL_TABLES {
            if self.row_db.table(t).chains().updated_row_count() > 0 {
                self.row_db
                    .table_mut(t)
                    .defragment(&gc, pushtap_mvcc::DefragStrategy::Cpu, ts);
            }
        }
        let start = self.now + rebuild;
        let end = self
            .ideal
            .query_time(query, self.scale, &mut self.mem, start);
        self.now = end;
        (end.saturating_sub(start) + rebuild, rebuild)
    }

    /// Transactions committed since the last rebuild.
    pub fn staleness(&self) -> u64 {
        self.staleness + self.synthetic
    }

    /// Marks `n` transactions of staleness without executing them (used
    /// by analytic sweeps).
    pub fn add_staleness(&mut self, n: u64) {
        self.synthetic += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushtap_pim::ControlArch;

    #[test]
    fn ideal_scales_with_rows_and_query_weight() {
        let cfg = SystemConfig::dimm();
        let ideal = IdealModel::new(ControlArch::Pushtap, &cfg);
        let mut mem = MemSystem::new(cfg);
        let q6_small = ideal.query_time(Query::Q6, 0.001, &mut mem, Ps::ZERO);
        let mut mem2 = MemSystem::new(cfg);
        let q6_big = ideal.query_time(Query::Q6, 0.01, &mut mem2, Ps::ZERO);
        assert!(q6_big > q6_small);
        // Q9 (join-heavy) costs more than Q6 (selection-heavy).
        let mut mem3 = MemSystem::new(cfg);
        let q9 = ideal.query_time(Query::Q9, 0.001, &mut mem3, Ps::ZERO);
        assert!(q9 > q6_small);
    }

    #[test]
    fn rebuild_grows_with_staleness() {
        let mut mi = MultiInstance::new(DbConfig::small(), SystemConfig::dimm(), 1.0).unwrap();
        let r0 = mi.rebuild_time();
        mi.add_staleness(100_000);
        let r1 = mi.rebuild_time();
        assert!(r1 > r0 * 10);
        // Rebuild resets staleness.
        let (_, rebuild) = mi.run_query(Query::Q6);
        assert_eq!(rebuild, r1);
        assert_eq!(mi.staleness(), 0);
    }

    #[test]
    fn hbm_accelerator_cuts_rebuild() {
        let mut slow = MultiInstance::new(DbConfig::small(), SystemConfig::dimm(), 1.0).unwrap();
        let mut fast = MultiInstance::new(DbConfig::small(), SystemConfig::hbm(), 4.1).unwrap();
        slow.add_staleness(1_000_000);
        fast.add_staleness(1_000_000);
        assert!(fast.rebuild_time() < slow.rebuild_time());
    }

    #[test]
    fn mi_transactions_run_on_host_side() {
        let mut mi = MultiInstance::new(DbConfig::small(), SystemConfig::dimm(), 1.0).unwrap();
        let mut gen = pushtap_chbench::TxnGen::new(
            2,
            mi.row_db.table(Table::Warehouse).n_rows(),
            mi.row_db.table(Table::Customer).n_rows(),
            mi.row_db.table(Table::Item).n_rows(),
            mi.row_db.table(Table::Stock).n_rows(),
        );
        let t0 = mi.now();
        for txn in gen.batch(20) {
            mi.execute_txn(&txn);
        }
        assert!(mi.now() > t0);
        assert_eq!(mi.staleness(), 20);
    }
}
