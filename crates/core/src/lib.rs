//! The PUSHtap system crate: the paper's primary contribution assembled
//! from the substrate crates, plus every baseline the evaluation compares
//! against.
//!
//! * [`Pushtap`] — the single-instance HTAP engine: unified-format
//!   storage, MVCC with bitmap snapshots, *atomic* defragment-and-retry
//!   on delta pressure (aborted attempts roll back completely and are
//!   counted in [`OltpReport::aborts`]), periodic hybrid
//!   defragmentation, two-phase PIM analytics, on a DIMM or HBM system;
//! * [`IdealModel`] — the compact-column lower bound of Fig. 9(b);
//! * [`MultiInstance`] — the Polynesia-like MI baseline (row instance in
//!   host memory + rebuilt column instance in PIM memory);
//! * [`FrontierParams`] — the Fig. 10 throughput-frontier model;
//! * [`tpmc`]/[`qphh`] — evaluation metrics.
//!
//! # Examples
//!
//! ```
//! use pushtap_core::{Pushtap, PushtapConfig};
//! use pushtap_olap::Query;
//!
//! let mut system = Pushtap::new(PushtapConfig::small())?;
//! let mut gen = system.txn_gen(42);
//! let oltp = system.run_txns(&mut gen, 50);
//! assert_eq!(oltp.committed, 50);
//! let report = system.run_query(Query::Q6);
//! assert!(report.consistency > pushtap_pim::Ps::ZERO);
//! # Ok::<(), pushtap_format::LayoutError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod baseline;
mod frontier;
mod metrics;
mod mixed;
mod system;

pub use baseline::{IdealModel, MultiInstance};
pub use frontier::{FrontierParams, FrontierPoint};
pub use metrics::{qphh, tpmc};
pub use mixed::{run_mixed, MixConfig, MixReport};
pub use system::{
    GcStats, MaintPause, OltpReport, Pushtap, PushtapConfig, QueryReport, DEFRAG_FIXED_OVERHEAD,
    GC_FIXED_OVERHEAD,
};
