//! Throughput metrics: tpmC (transactions per minute, TPC-C) and QphH
//! (queries per hour, TPC-H), as used in Fig. 10.

use pushtap_pim::Ps;

/// Transactions-per-minute from a transaction count and elapsed time,
/// scaled by the number of concurrent cores driving transactions.
pub fn tpmc(txns: u64, elapsed: Ps, cores: u32) -> f64 {
    if elapsed == Ps::ZERO {
        return 0.0;
    }
    txns as f64 * cores as f64 / elapsed.as_secs() * 60.0
}

/// Queries-per-hour from a query count and elapsed time.
pub fn qphh(queries: u64, elapsed: Ps) -> f64 {
    if elapsed == Ps::ZERO {
        return 0.0;
    }
    queries as f64 / elapsed.as_secs() * 3600.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpmc_scales_with_cores_and_time() {
        let t = Ps::from_ms(1000.0); // 1 s
        assert!((tpmc(100, t, 1) - 6000.0).abs() < 1e-9);
        assert!((tpmc(100, t, 16) - 96_000.0).abs() < 1e-9);
        assert_eq!(tpmc(100, Ps::ZERO, 16), 0.0);
    }

    #[test]
    fn qphh_converts_to_hourly() {
        let t = Ps::from_ms(100.0); // 0.1 s per query
        assert!((qphh(1, t) - 36_000.0).abs() < 1e-9);
        assert_eq!(qphh(5, Ps::ZERO), 0.0);
    }
}
