//! Footprint-driven execution of the full CH-benCHmark query set.
//!
//! Q1/Q6/Q9 have full value-correct implementations ([`crate::Query`]).
//! The remaining nineteen queries are executed as their column-footprint
//! scan schedules — §6.3's execution model: "columns are scanned
//! serially, with PIM parallelism fully utilized during each scan" — plus
//! CPU coordination per join edge (hash fetch, bucket partition,
//! transfer back). This is what drives whole-workload throughput numbers
//! (QphH spans all 22 queries) and the §7.1 scheduling mix.

use std::collections::BTreeMap;

use pushtap_chbench::{query_footprints, Table};
use pushtap_oltp::TpccDb;
use pushtap_pim::{MemSystem, PimOpKind, Ps};

use crate::exec::ScanEngine;
use crate::query::QueryTiming;

/// Timing report for one footprint-executed query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FootprintReport {
    /// Query number (1..=22).
    pub query: u8,
    /// Columns scanned on the PIM units.
    pub pim_columns: u32,
    /// Columns scanned through the CPU fallback (normal columns).
    pub cpu_columns: u32,
    /// Tables joined.
    pub tables: u32,
    /// Decomposed timing.
    pub timing: QueryTiming,
}

/// Executes query `q` (1..=22) as its footprint schedule against the
/// database's current snapshots.
///
/// # Panics
///
/// Panics if `q` is outside `1..=22`.
pub fn run_footprint_query(
    db: &TpccDb,
    engine: &ScanEngine,
    mem: &mut MemSystem,
    q: u8,
    at: Ps,
) -> FootprintReport {
    assert!((1..=22).contains(&q), "query Q{q} out of range");
    let fp = &query_footprints()[(q - 1) as usize];
    let mut timing = QueryTiming::default();
    let mut now = at;
    let mut pim_columns = 0u32;
    let mut cpu_columns = 0u32;

    // Group the footprint by table, preserving order.
    let mut by_table: BTreeMap<Table, Vec<&'static str>> = BTreeMap::new();
    for &col in &fp.columns {
        let table = Table::of_column(col).expect("footprint column exists");
        by_table.entry(table).or_default().push(col);
    }

    for (table, cols) in &by_table {
        let t = db.table(*table);
        for (i, col) in cols.iter().enumerate() {
            let Some(c) = t.layout().schema().index_of(col) else {
                continue;
            };
            // First column of a table filters; later ones aggregate-style.
            let op = if i == 0 {
                PimOpKind::Filter
            } else {
                PimOpKind::Aggregate
            };
            if t.layout().key_location(c).is_some() {
                let out = engine.scan_column(t, c, op, mem, now);
                timing.pim_load += out.load_time;
                timing.pim_compute += out.compute_time;
                timing.control += out.control_time;
                timing.cpu_blocked += out.cpu_blocked;
                now = out.end;
                pim_columns += 1;
            } else {
                let end = engine.cpu_scan_column(t, c, mem, now);
                timing.cpu_compute += end.saturating_sub(now);
                now = end;
                cpu_columns += 1;
            }
        }
    }

    // Join coordination: per join edge, hash values of the smaller side
    // cross the bus twice (fetch + bucket transfer, §6.3) and the PIM
    // units probe.
    let tables: Vec<&Table> = by_table.keys().collect();
    for w in tables.windows(2) {
        let small = db.table(*w[0]).n_rows().min(db.table(*w[1]).n_rows());
        let bytes = small * 4 * 2;
        let bursts = bytes.div_ceil(64).max(1);
        let mid = mem.stream_sampled(
            pushtap_pim::Side::Pim,
            pushtap_pim::BankAddr::new(0, 0, 0),
            0,
            bursts,
            16,
            pushtap_pim::Op::Read,
            64,
            now,
        );
        now = mem.stream_sampled(
            pushtap_pim::Side::Pim,
            pushtap_pim::BankAddr::new(1, 0, 1),
            0,
            bursts,
            16,
            pushtap_pim::Op::Write,
            64,
            mid,
        );
        timing.cpu_compute += now.saturating_sub(mid);
        let probe = engine
            .unit()
            .round_to_wire(small * 4 / engine.units().max(1));
        let join = engine.timed_phases(
            PimOpKind::Join,
            probe.max(8),
            probe.max(8) * engine.units(),
            1.0,
            mem,
            now,
        );
        timing.pim_load += join.load_time;
        timing.pim_compute += join.compute_time;
        timing.control += join.control_time;
        now = join.end;
    }

    timing.end = now.saturating_sub(at);
    FootprintReport {
        query: q,
        pim_columns,
        cpu_columns,
        tables: by_table.len() as u32,
        timing,
    }
}

/// Executes all 22 queries back to back, returning per-query reports.
pub fn run_all_queries(
    db: &TpccDb,
    engine: &ScanEngine,
    mem: &mut MemSystem,
    at: Ps,
) -> Vec<FootprintReport> {
    let mut now = at;
    (1..=22u8)
        .map(|q| {
            let r = run_footprint_query(db, engine, mem, q, now);
            now += r.timing.end;
            r
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushtap_oltp::DbConfig;
    use pushtap_pim::{ControlArch, SystemConfig};

    fn setup() -> (TpccDb, MemSystem, ScanEngine) {
        let mem = MemSystem::dimm();
        let db = TpccDb::build(&DbConfig::small(), &mem).unwrap();
        let engine = ScanEngine::new(ControlArch::Pushtap, &SystemConfig::dimm());
        (db, mem, engine)
    }

    #[test]
    fn all_22_queries_execute() {
        let (db, mut mem, engine) = setup();
        let reports = run_all_queries(&db, &engine, &mut mem, Ps::ZERO);
        assert_eq!(reports.len(), 22);
        for r in &reports {
            assert!(r.timing.end > Ps::ZERO, "Q{} took no time", r.query);
            assert!(
                r.pim_columns + r.cpu_columns > 0,
                "Q{} scanned nothing",
                r.query
            );
        }
    }

    /// Q1 scans one table; Q5 joins six — more tables cost more time.
    #[test]
    fn join_heavy_queries_cost_more() {
        let (db, mut mem, engine) = setup();
        let q1 = run_footprint_query(&db, &engine, &mut mem, 1, Ps::ZERO);
        let q5 = run_footprint_query(&db, &engine, &mut mem, 5, Ps::ZERO);
        assert_eq!(q1.tables, 1);
        assert!(q5.tables >= 5, "Q5 spans {} tables", q5.tables);
        assert!(q5.timing.end > q1.timing.end);
    }

    /// Key columns go to the PIM units; the paper's default key set keeps
    /// the CPU fallback rare.
    #[test]
    fn most_columns_scan_on_pim() {
        let (db, mut mem, engine) = setup();
        let reports = run_all_queries(&db, &engine, &mut mem, Ps::ZERO);
        let pim: u32 = reports.iter().map(|r| r.pim_columns).sum();
        let cpu: u32 = reports.iter().map(|r| r.cpu_columns).sum();
        assert!(pim > cpu * 5, "pim {pim} vs cpu {cpu}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn query_zero_panics() {
        let (db, mut mem, engine) = setup();
        run_footprint_query(&db, &engine, &mut mem, 0, Ps::ZERO);
    }
}
