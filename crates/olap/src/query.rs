//! The three analytical queries of the evaluation (§7.1): Q1
//! (aggregation-heavy), Q6 (selection-heavy), Q9 (join-heavy), executed
//! with the §6.3 CPU/PIM task division and returning *value-correct*
//! results from the snapshot.

use std::collections::{BTreeMap, HashSet};

use pushtap_chbench::{dec_u64, Table};
use pushtap_oltp::{HtapTable, TpccDb};
use pushtap_pim::{BankAddr, MemSystem, Op, PimOpKind, Ps, Side};

use crate::exec::{ScanEngine, ScanOutcome};

/// Q1/Q6 delivery-date cutoff: the midpoint of the generator's two-year
/// window (selectivity ≈ 50 %).
pub const DELIVERY_CUTOFF: u64 = 1_167_600_000 + 31_536_000;
/// Q6 quantity bound (inclusive): quantities are 1..=50, so ≈ 50 %.
pub const QUANTITY_MAX: u64 = 25;
/// Q9 item predicate: prices ending in a 0/5 cent (≈ 20 %).
pub const PRICE_MODULUS: u64 = 5;
/// Q9 grouping fan-out ("nations").
pub const Q9_GROUPS: u64 = 7;

/// One Q1 output row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Q1Row {
    /// Grouping key (`ol_number`).
    pub ol_number: u64,
    /// `SUM(ol_quantity)`.
    pub sum_qty: u64,
    /// `SUM(ol_amount)`.
    pub sum_amount: u64,
    /// `COUNT(*)`.
    pub count: u64,
}

impl Q1Row {
    /// `AVG(ol_quantity)` recombined from the distributable sum/count
    /// pair (the reason Q1 partials carry sums, never averages).
    pub fn avg_qty(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_qty as f64 / self.count as f64
        }
    }

    /// `AVG(ol_amount)` recombined from sum/count.
    pub fn avg_amount(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_amount as f64 / self.count as f64
        }
    }
}

/// One Q9 output row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Q9Row {
    /// Grouping key (`ol_i_id mod Q9_GROUPS`, the "nation" proxy).
    pub group: u64,
    /// `SUM(ol_amount)` over matching order lines.
    pub sum_amount: u64,
}

/// A query's value result.
///
/// Results are *mergeable partials*: every aggregate a query produces is
/// distributive (sums, counts, per-group sums), so the result computed
/// over any partition of the fact rows combines with [`QueryResult::merge`]
/// into exactly the result over the union. Averages are recombined from
/// sum/count at the edge ([`Q1Row::avg_qty`]); grouped results merge per
/// group key. This is what makes scatter-gather execution across shards
/// value-identical to a single-instance scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryResult {
    /// Q1's grouped pricing summary.
    Q1(Vec<Q1Row>),
    /// Q6's single revenue figure.
    Q6 {
        /// `SUM(ol_amount)` under the date/quantity predicate.
        revenue: u64,
    },
    /// Q9's grouped profit.
    Q9(Vec<Q9Row>),
}

impl QueryResult {
    /// Number of rows in the result (1 for the scalar Q6) — the
    /// cardinality a gather step transfers and merges.
    pub fn rows(&self) -> u64 {
        match self {
            QueryResult::Q1(rows) => rows.len() as u64,
            QueryResult::Q6 { .. } => 1,
            QueryResult::Q9(rows) => rows.len() as u64,
        }
    }

    /// Merges another partial of the same query into this one:
    /// sums add (wrapping, like the scans), grouped rows merge by key
    /// and stay key-sorted.
    ///
    /// # Panics
    ///
    /// Panics if the two partials come from different queries.
    pub fn merge(self, other: QueryResult) -> QueryResult {
        match (self, other) {
            (QueryResult::Q1(a), QueryResult::Q1(b)) => {
                let mut groups: BTreeMap<u64, Q1Row> = BTreeMap::new();
                for row in a.into_iter().chain(b) {
                    let e = groups.entry(row.ol_number).or_insert(Q1Row {
                        ol_number: row.ol_number,
                        sum_qty: 0,
                        sum_amount: 0,
                        count: 0,
                    });
                    e.sum_qty = e.sum_qty.wrapping_add(row.sum_qty);
                    e.sum_amount = e.sum_amount.wrapping_add(row.sum_amount);
                    e.count += row.count;
                }
                QueryResult::Q1(groups.into_values().collect())
            }
            (QueryResult::Q6 { revenue: a }, QueryResult::Q6 { revenue: b }) => QueryResult::Q6 {
                revenue: a.wrapping_add(b),
            },
            (QueryResult::Q9(a), QueryResult::Q9(b)) => {
                let mut groups: BTreeMap<u64, u64> = BTreeMap::new();
                for row in a.into_iter().chain(b) {
                    let g = groups.entry(row.group).or_insert(0);
                    *g = g.wrapping_add(row.sum_amount);
                }
                QueryResult::Q9(
                    groups
                        .into_iter()
                        .map(|(group, sum_amount)| Q9Row { group, sum_amount })
                        .collect(),
                )
            }
            (a, b) => panic!("cannot merge partials of different queries: {a:?} vs {b:?}"),
        }
    }
}

/// Folds any number of same-query partials into one result (`None` for
/// an empty iterator).
pub fn merge_partials(parts: impl IntoIterator<Item = QueryResult>) -> Option<QueryResult> {
    parts.into_iter().reduce(QueryResult::merge)
}

/// Timing of a query execution, decomposed as in Fig. 9(b).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryTiming {
    /// Completion time.
    pub end: Ps,
    /// PIM load (DMA) time.
    pub pim_load: Ps,
    /// PIM compute time.
    pub pim_compute: Ps,
    /// CPU-side compute (partitioning, merging, final reduction).
    pub cpu_compute: Ps,
    /// Control-path overhead.
    pub control: Ps,
    /// Time CPU access to the scanned banks was blocked.
    pub cpu_blocked: Ps,
}

impl QueryTiming {
    fn absorb(&mut self, o: &ScanOutcome) {
        self.pim_load += o.load_time;
        self.pim_compute += o.compute_time;
        self.control += o.control_time;
        self.cpu_blocked += o.cpu_blocked;
    }
}

/// The analytical queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Query {
    /// TPC-H Q1 (aggregation-heavy).
    Q1,
    /// TPC-H Q6 (selection-heavy).
    Q6,
    /// TPC-H Q9 (join-heavy).
    Q9,
}

impl Query {
    /// All three evaluation queries.
    pub const ALL: [Query; 3] = [Query::Q1, Query::Q6, Query::Q9];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Query::Q1 => "Q1",
            Query::Q6 => "Q6",
            Query::Q9 => "Q9",
        }
    }

    /// Executes the query against the database's *current snapshots*
    /// (call the engine's snapshotting first for freshness), returning
    /// the value result and the timing.
    pub fn execute(
        self,
        db: &TpccDb,
        engine: &ScanEngine,
        mem: &mut MemSystem,
        at: Ps,
    ) -> (QueryResult, QueryTiming) {
        match self {
            Query::Q1 => q1(db, engine, mem, at),
            Query::Q6 => q6(db, engine, mem, at),
            Query::Q9 => q9(db, engine, mem, at),
        }
    }
}

fn col(t: &HtapTable, name: &str) -> u32 {
    t.layout()
        .schema()
        .index_of(name)
        .unwrap_or_else(|| panic!("missing column {name}"))
}

/// Scans with the PIM units when the column is device-local, otherwise
/// falls back to the CPU path (§4.1.2's normal-column discussion).
fn scan(
    engine: &ScanEngine,
    table: &HtapTable,
    c: u32,
    op: PimOpKind,
    mem: &mut MemSystem,
    at: Ps,
    timing: &mut QueryTiming,
) -> Ps {
    if table.layout().key_location(c).is_some() {
        let out = engine.scan_column(table, c, op, mem, at);
        timing.absorb(&out);
        out.end
    } else {
        let end = engine.cpu_scan_column(table, c, mem, at);
        timing.cpu_compute += end.saturating_sub(at);
        end
    }
}

/// CPU-mediated transfer of `bytes` between banks (indices, hash values,
/// bucket partitions — §6.3): a read stream plus a write stream.
fn cpu_transfer(mem: &mut MemSystem, bytes: u64, at: Ps) -> Ps {
    if bytes == 0 {
        return at;
    }
    let bursts = bytes.div_ceil(64);
    // Valid on every configured geometry (HBM has a single rank).
    let bank_r = BankAddr::new(0, 0, 0);
    let bank_w = BankAddr::new(1, 0, 1);
    let mid = mem.stream_sampled(Side::Pim, bank_r, 0, bursts, 16, Op::Read, 64, at);
    mem.stream_sampled(Side::Pim, bank_w, 0, bursts, 16, Op::Write, 64, mid)
}

fn cpu_compute(db: &TpccDb, elems: u64, cycles_per_elem: u64) -> Ps {
    db.meter().cpu.cycles(elems * cycles_per_elem)
}

fn q6(db: &TpccDb, engine: &ScanEngine, mem: &mut MemSystem, at: Ps) -> (QueryResult, QueryTiming) {
    let ol = db.table(Table::OrderLine);
    let (c_date, c_qty, c_amt) = (
        col(ol, "ol_delivery_d"),
        col(ol, "ol_quantity"),
        col(ol, "ol_amount"),
    );
    let mut t = QueryTiming::default();
    // Serial column scans (§6.3): filter date, filter qty, aggregate amount.
    let mut now = scan(engine, ol, c_date, PimOpKind::Filter, mem, at, &mut t);
    now = scan(engine, ol, c_qty, PimOpKind::Filter, mem, now, &mut t);
    now = scan(engine, ol, c_amt, PimOpKind::Aggregate, mem, now, &mut t);
    // Collect one partial sum per PIM unit and reduce on the CPU.
    let partials = engine.units() * 8;
    let end = cpu_transfer(mem, partials, now);
    let reduce = cpu_compute(db, engine.units(), 4);
    t.cpu_compute += (end - now) + reduce;
    t.end = end + reduce;

    // Functional result over the snapshot.
    let mut revenue = 0u64;
    for row in 0..ol.n_rows() {
        let date = dec_u64(&ol.snapshot_read_value(row, c_date));
        if date <= DELIVERY_CUTOFF {
            continue;
        }
        let qty = dec_u64(&ol.snapshot_read_value(row, c_qty));
        if qty <= QUANTITY_MAX {
            revenue = revenue.wrapping_add(dec_u64(&ol.snapshot_read_value(row, c_amt)));
        }
    }
    (QueryResult::Q6 { revenue }, t)
}

fn q1(db: &TpccDb, engine: &ScanEngine, mem: &mut MemSystem, at: Ps) -> (QueryResult, QueryTiming) {
    let ol = db.table(Table::OrderLine);
    let (c_date, c_num, c_qty, c_amt) = (
        col(ol, "ol_delivery_d"),
        col(ol, "ol_number"),
        col(ol, "ol_quantity"),
        col(ol, "ol_amount"),
    );
    let mut t = QueryTiming::default();
    // Filter on the date, then Group on ol_number.
    let mut now = scan(engine, ol, c_date, PimOpKind::Filter, mem, at, &mut t);
    now = scan(engine, ol, c_num, PimOpKind::Group, mem, now, &mut t);
    // CPU moves group indices to the banks holding the aggregated columns
    // (§6.3): one index byte per row.
    let idx_bytes = ol.n_rows() + ol.live_delta_rows();
    let moved = cpu_transfer(mem, idx_bytes, now);
    t.cpu_compute += moved - now;
    now = moved;
    // Aggregate quantity and amount.
    now = scan(engine, ol, c_qty, PimOpKind::Aggregate, mem, now, &mut t);
    now = scan(engine, ol, c_amt, PimOpKind::Aggregate, mem, now, &mut t);
    // Collect per-unit per-group partials.
    let partials = engine.units() * 16 * 3;
    let end = cpu_transfer(mem, partials, now);
    let reduce = cpu_compute(db, engine.units() * 16, 4);
    t.cpu_compute += (end - now) + reduce;
    t.end = end + reduce;

    // Functional result.
    let mut groups: BTreeMap<u64, Q1Row> = BTreeMap::new();
    for row in 0..ol.n_rows() {
        let date = dec_u64(&ol.snapshot_read_value(row, c_date));
        if date <= DELIVERY_CUTOFF {
            continue;
        }
        let num = dec_u64(&ol.snapshot_read_value(row, c_num));
        let qty = dec_u64(&ol.snapshot_read_value(row, c_qty));
        let amt = dec_u64(&ol.snapshot_read_value(row, c_amt));
        let e = groups.entry(num).or_insert(Q1Row {
            ol_number: num,
            sum_qty: 0,
            sum_amount: 0,
            count: 0,
        });
        e.sum_qty = e.sum_qty.wrapping_add(qty);
        e.sum_amount = e.sum_amount.wrapping_add(amt);
        e.count += 1;
    }
    (QueryResult::Q1(groups.into_values().collect()), t)
}

fn q9(db: &TpccDb, engine: &ScanEngine, mem: &mut MemSystem, at: Ps) -> (QueryResult, QueryTiming) {
    let ol = db.table(Table::OrderLine);
    let it = db.table(Table::Item);
    let (c_ol_iid, c_amt) = (col(ol, "ol_i_id"), col(ol, "ol_amount"));
    let (c_iid, c_price) = (col(it, "i_id"), col(it, "i_price"));
    let mut t = QueryTiming::default();
    // Hash both join columns with the PIM units ([38]'s task division).
    let mut now = scan(engine, it, c_iid, PimOpKind::Hash, mem, at, &mut t);
    now = scan(engine, ol, c_ol_iid, PimOpKind::Hash, mem, now, &mut t);
    // CPU fetches hash values, partitions into buckets, transfers back.
    let hash_bytes = (it.n_rows() + ol.n_rows()) * 4;
    let moved = cpu_transfer(mem, 2 * hash_bytes, now);
    let partition = cpu_compute(db, it.n_rows() + ol.n_rows(), 6);
    t.cpu_compute += (moved - now) + partition;
    now = moved + partition;
    // Bucket-local joins on the PIM units.
    let probe_bytes = engine
        .unit()
        .round_to_wire((it.n_rows() + ol.n_rows()) * 4 / engine.units().max(1));
    let join = engine.timed_phases(
        PimOpKind::Join,
        probe_bytes.max(8),
        probe_bytes.max(8) * engine.units(),
        1.0,
        mem,
        now,
    );
    t.absorb(&join);
    now = join.end;
    // Aggregate the amounts of matching lines.
    now = scan(engine, ol, c_amt, PimOpKind::Aggregate, mem, now, &mut t);
    let partials = engine.units() * Q9_GROUPS * 8;
    let end = cpu_transfer(mem, partials, now);
    let reduce = cpu_compute(db, engine.units() * Q9_GROUPS, 4);
    t.cpu_compute += (end - now) + reduce;
    t.end = end + reduce;

    // Functional result: semi-join on item ids passing the price filter.
    let mut matching: HashSet<u64> = HashSet::new();
    for row in 0..it.n_rows() {
        let price = dec_u64(&it.snapshot_read_value(row, c_price));
        if price.is_multiple_of(PRICE_MODULUS) {
            matching.insert(dec_u64(&it.snapshot_read_value(row, c_iid)));
        }
    }
    let mut groups: BTreeMap<u64, u64> = BTreeMap::new();
    for row in 0..ol.n_rows() {
        let iid = dec_u64(&ol.snapshot_read_value(row, c_ol_iid));
        if matching.contains(&iid) {
            let amt = dec_u64(&ol.snapshot_read_value(row, c_amt));
            let g = groups.entry(iid % Q9_GROUPS).or_insert(0);
            *g = g.wrapping_add(amt);
        }
    }
    (
        QueryResult::Q9(
            groups
                .into_iter()
                .map(|(group, sum_amount)| Q9Row { group, sum_amount })
                .collect(),
        ),
        t,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushtap_oltp::DbConfig;
    use pushtap_pim::{ControlArch, SystemConfig};

    fn setup() -> (TpccDb, MemSystem, ScanEngine) {
        let mem = MemSystem::dimm();
        let db = TpccDb::build(&DbConfig::small(), &mem).unwrap();
        let engine = ScanEngine::new(ControlArch::Pushtap, &SystemConfig::dimm());
        (db, mem, engine)
    }

    #[test]
    fn q6_returns_nonzero_revenue() {
        let (db, mut mem, engine) = setup();
        let (r, t) = Query::Q6.execute(&db, &engine, &mut mem, Ps::ZERO);
        let QueryResult::Q6 { revenue } = r else {
            panic!("wrong result kind")
        };
        assert!(revenue > 0);
        assert!(t.end > Ps::ZERO);
        assert!(t.pim_load > Ps::ZERO);
        assert!(t.pim_compute > Ps::ZERO);
    }

    #[test]
    fn q1_groups_cover_the_domain() {
        let (db, mut mem, engine) = setup();
        let (r, _) = Query::Q1.execute(&db, &engine, &mut mem, Ps::ZERO);
        let QueryResult::Q1(rows) = r else {
            panic!("wrong result kind")
        };
        // ol_number has domain 15; with ~50 % date selectivity over 30 k
        // rows every group should appear.
        assert_eq!(rows.len(), 15);
        for row in &rows {
            assert!(row.count > 0);
            assert!(row.sum_qty >= row.count); // quantities ≥ 1
        }
    }

    #[test]
    fn q9_produces_all_groups() {
        let (db, mut mem, engine) = setup();
        let (r, t) = Query::Q9.execute(&db, &engine, &mut mem, Ps::ZERO);
        let QueryResult::Q9(rows) = r else {
            panic!("wrong result kind")
        };
        assert_eq!(rows.len(), Q9_GROUPS as usize);
        assert!(t.cpu_compute > Ps::ZERO, "join needs CPU partitioning");
    }

    #[test]
    fn queries_are_deterministic() {
        let (db, mut mem, engine) = setup();
        let (a, _) = Query::Q6.execute(&db, &engine, &mut mem, Ps::ZERO);
        let (b, _) = Query::Q6.execute(&db, &engine, &mut mem, Ps::ZERO);
        assert_eq!(a, b);
    }

    #[test]
    fn query_names() {
        assert_eq!(Query::Q1.name(), "Q1");
        assert_eq!(Query::ALL.len(), 3);
    }

    #[test]
    fn q6_partials_add() {
        let a = QueryResult::Q6 { revenue: 10 };
        let b = QueryResult::Q6 { revenue: 32 };
        assert_eq!(a.merge(b), QueryResult::Q6 { revenue: 42 });
    }

    #[test]
    fn q1_partials_merge_by_group_and_stay_sorted() {
        let a = QueryResult::Q1(vec![
            Q1Row {
                ol_number: 1,
                sum_qty: 5,
                sum_amount: 50,
                count: 2,
            },
            Q1Row {
                ol_number: 3,
                sum_qty: 1,
                sum_amount: 10,
                count: 1,
            },
        ]);
        let b = QueryResult::Q1(vec![
            Q1Row {
                ol_number: 0,
                sum_qty: 7,
                sum_amount: 70,
                count: 3,
            },
            Q1Row {
                ol_number: 1,
                sum_qty: 2,
                sum_amount: 20,
                count: 1,
            },
        ]);
        let QueryResult::Q1(rows) = a.merge(b) else {
            panic!("wrong kind")
        };
        assert_eq!(
            rows,
            vec![
                Q1Row {
                    ol_number: 0,
                    sum_qty: 7,
                    sum_amount: 70,
                    count: 3
                },
                Q1Row {
                    ol_number: 1,
                    sum_qty: 7,
                    sum_amount: 70,
                    count: 3
                },
                Q1Row {
                    ol_number: 3,
                    sum_qty: 1,
                    sum_amount: 10,
                    count: 1
                },
            ]
        );
        assert!((rows[1].avg_qty() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn q9_partials_merge_by_group() {
        let a = QueryResult::Q9(vec![Q9Row {
            group: 2,
            sum_amount: 9,
        }]);
        let b = QueryResult::Q9(vec![
            Q9Row {
                group: 1,
                sum_amount: 4,
            },
            Q9Row {
                group: 2,
                sum_amount: 1,
            },
        ]);
        let QueryResult::Q9(rows) = a.merge(b) else {
            panic!("wrong kind")
        };
        assert_eq!(
            rows,
            vec![
                Q9Row {
                    group: 1,
                    sum_amount: 4
                },
                Q9Row {
                    group: 2,
                    sum_amount: 10
                },
            ]
        );
    }

    #[test]
    fn merge_partials_folds_many() {
        let parts = (0..4).map(|i| QueryResult::Q6 { revenue: i });
        assert_eq!(
            crate::query::merge_partials(parts),
            Some(QueryResult::Q6 { revenue: 6 })
        );
        assert_eq!(crate::query::merge_partials(std::iter::empty()), None);
    }

    #[test]
    #[should_panic(expected = "different queries")]
    fn merge_rejects_kind_mismatch() {
        let _ = QueryResult::Q6 { revenue: 1 }.merge(QueryResult::Q9(vec![]));
    }

    /// The distributive-merge law on real data: executing over the full
    /// table equals merging partials is exercised end to end by the
    /// shard crate; here we check merge is associative on samples.
    #[test]
    fn merge_is_associative() {
        let p = |r| QueryResult::Q6 { revenue: r };
        let left = p(1).merge(p(2)).merge(p(3));
        let right = p(1).merge(p(2).merge(p(3)));
        assert_eq!(left, right);
    }
}
