//! The OLAP engine of PUSHtap (§6 of the paper).
//!
//! Analytical queries run on the PIM units through a two-phase execution
//! model: *load* phases DMA 32 kB WRAM slices (banks handed to PIM, CPU
//! blocked on those banks only), *compute* phases evaluate the operator
//! from WRAM while the CPU runs transactions freely. The CPU coordinates
//! multi-column operators (group-index shuffles, hash-join bucket
//! partitioning, §6.3).
//!
//! * [`LaunchRequest`] — byte-exact Fig. 7(b) launch-request encodings;
//! * [`ScanEngine`] — two-phase scans under PUSHtap's scheduler or the
//!   original per-unit control architecture (the Fig. 12(b) comparison);
//! * [`Query`] — Q1 / Q6 / Q9 with value-correct results;
//! * [`ref_q1`]/[`ref_q6`]/[`ref_q9`] — the naive reference executor used
//!   to validate the PIM path.
//!
//! # Examples
//!
//! ```
//! use pushtap_olap::{Query, ScanEngine};
//! use pushtap_oltp::{DbConfig, TpccDb};
//! use pushtap_pim::{ControlArch, MemSystem, Ps, SystemConfig};
//!
//! let mut mem = MemSystem::dimm();
//! let db = TpccDb::build(&DbConfig::small(), &mem)?;
//! let engine = ScanEngine::new(ControlArch::Pushtap, &SystemConfig::dimm());
//! let (result, timing) = Query::Q6.execute(&db, &engine, &mut mem, Ps::ZERO);
//! assert!(timing.end > Ps::ZERO);
//! # let _ = result;
//! # Ok::<(), pushtap_format::LayoutError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod exec;
mod footprint;
mod ops;
mod query;
mod reference;

pub use exec::{ScanEngine, ScanOutcome};
pub use footprint::{run_all_queries, run_footprint_query, FootprintReport};
pub use ops::{DecodeError, LaunchRequest};
pub use query::{
    merge_partials, Q1Row, Q9Row, Query, QueryResult, QueryTiming, DELIVERY_CUTOFF, PRICE_MODULUS,
    Q9_GROUPS, QUANTITY_MAX,
};
pub use reference::{ref_q1, ref_q6, ref_q9};
