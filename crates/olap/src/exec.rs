//! Two-phase PIM scan execution (§6.2).
//!
//! An OLAP operation over a column alternates **load** phases (the bank is
//! handed to the PIM units, which DMA a 32 kB WRAM slice while CPU access
//! to those banks is blocked) and **compute** phases (PIM units work from
//! WRAM, the CPU accesses DRAM freely). PUSHtap's scheduler makes each
//! phase cost one disguised memory access; the original architecture pays
//! per-unit messaging and keeps the banks for the whole offload.

use pushtap_oltp::HtapTable;
use pushtap_pim::{ControlArch, ControlModel, MemSystem, PimOpKind, PimUnit, Ps, SystemConfig};

/// Timing outcome of one column scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Completion time.
    pub end: Ps,
    /// Number of load/compute phase pairs.
    pub phases: u64,
    /// Total PIM DMA (load) time.
    pub load_time: Ps,
    /// Total PIM compute time.
    pub compute_time: Ps,
    /// Total control-path overhead (launch + poll + handover).
    pub control_time: Ps,
    /// How long CPU access to the scanned banks was blocked.
    pub cpu_blocked: Ps,
    /// Bytes DMAed per PIM unit.
    pub bytes_per_unit: u64,
}

/// The scan engine: control architecture + PIM unit cost model.
#[derive(Debug, Clone)]
pub struct ScanEngine {
    control: ControlModel,
    unit: PimUnit,
    units: u64,
    arch: ControlArch,
}

impl ScanEngine {
    /// Builds a scan engine for the system configuration.
    pub fn new(arch: ControlArch, cfg: &SystemConfig) -> ScanEngine {
        ScanEngine {
            control: ControlModel::new(arch, cfg),
            unit: PimUnit::new(cfg.pim_unit),
            units: cfg.pim_geometry.pim_units() as u64,
            arch,
        }
    }

    /// The control architecture in use.
    pub fn arch(&self) -> ControlArch {
        self.arch
    }

    /// Total PIM units participating in scans.
    pub fn units(&self) -> u64 {
        self.units
    }

    /// The per-unit cost model.
    pub fn unit(&self) -> &PimUnit {
        &self.unit
    }

    /// Scans `col` of `table` with `op`, timing the two-phase execution.
    ///
    /// The scan streams the column's part across the data region plus the
    /// live delta rows — invisible versions still cost bandwidth because
    /// rows narrower than the 8 B wire cannot be skipped (§7.4, the
    /// fragmentation effect of Fig. 11(b)).
    ///
    /// # Panics
    ///
    /// Panics if `col` is not a device-local (key) column; normal columns
    /// are scanned by the CPU instead (§4.1.2) via
    /// [`ScanEngine::cpu_scan_column`].
    pub fn scan_column(
        &self,
        table: &HtapTable,
        col: u32,
        op: PimOpKind,
        mem: &mut MemSystem,
        at: Ps,
    ) -> ScanOutcome {
        let layout = table.layout();
        let (part, _) = layout
            .key_location(col)
            .expect("PIM scans require a device-local key column");
        let w = layout.parts()[part as usize].width() as u64;
        let cw = layout.schema().column(col).width as u64;
        let scanned_rows = table.n_rows() + table.live_delta_rows();
        let total_bytes = self.unit.round_to_wire(scanned_rows * w);
        let bytes_per_unit = total_bytes.div_ceil(self.units);
        self.timed_phases(
            op,
            bytes_per_unit,
            total_bytes,
            cw as f64 / w as f64,
            mem,
            at,
        )
    }

    /// The raw two-phase timing for `bytes_per_unit` of operand data per
    /// unit. `useful_frac` is the fraction of loaded bytes that carry the
    /// scanned column (effective-bandwidth accounting).
    pub fn timed_phases(
        &self,
        op: PimOpKind,
        bytes_per_unit: u64,
        total_bytes: u64,
        useful_frac: f64,
        mem: &mut MemSystem,
        at: Ps,
    ) -> ScanOutcome {
        assert!((0.0..=1.0).contains(&useful_frac), "bad useful fraction");
        let buffer = self.unit.spec().data_buffer_bytes() as u64;
        let phases = bytes_per_unit.div_ceil(buffer).max(1);
        let mut now = at;
        let mut out = ScanOutcome {
            phases,
            bytes_per_unit,
            ..ScanOutcome::default()
        };
        let mut remaining = bytes_per_unit;
        for _ in 0..phases {
            let chunk = remaining.min(buffer);
            remaining -= chunk;
            // Load phase: launch LS, banks handed over, DMA, poll.
            let launch = self.control.launch(PimOpKind::Ls);
            let load = self.unit.dma_time(chunk);
            let poll = self.control.poll();
            let release = self.control.release(PimOpKind::Ls);
            let load_end = now + launch + load + poll + release;
            if self.control.blocks_cpu(PimOpKind::Ls) {
                mem.lock_all_pim(load_end);
                out.cpu_blocked += load_end - now;
            }
            out.control_time += launch + poll + release;
            out.load_time += load;
            now = load_end;

            // Compute phase: CPU regains the banks under PUSHtap.
            let launch = self.control.launch(op);
            let compute = self.unit.compute_time(op, chunk / 8);
            let poll = self.control.poll();
            let release = self.control.release(op);
            let compute_end = now + launch + compute + poll + release;
            if self.control.blocks_cpu(op) {
                mem.lock_all_pim(compute_end);
                out.cpu_blocked += compute_end - now;
            }
            out.control_time += launch + poll + release;
            out.compute_time += compute;
            now = compute_end;
        }
        mem.charge_pim_dma(total_bytes, (total_bytes as f64 * useful_frac) as u64);
        out.end = now;
        out
    }

    /// CPU-side fallback scan of a normal (device-split) column: the CPU
    /// streams every part containing fragments of the column (§4.1.2's
    /// "we can still perform analytical queries on normal columns ...
    /// through the CPU, albeit with a performance loss").
    pub fn cpu_scan_column(&self, table: &HtapTable, col: u32, mem: &mut MemSystem, at: Ps) -> Ps {
        let layout = table.layout();
        let mut parts: Vec<u32> = layout.fragments(col).iter().map(|f| f.part).collect();
        parts.sort_unstable();
        parts.dedup();
        let g = table.config().granularity;
        let rows = table.n_rows();
        let mut end = at;
        for p in parts {
            let w = layout.parts()[p as usize].width() as u64;
            let bursts = (rows * w).div_ceil(g as u64);
            let bank = table.shard_of(0);
            let useful = ((layout.schema().column(col).width as u64 * rows) / bursts.max(1))
                .min(g as u64 * 8) as u32;
            let done = mem.stream_sampled(
                table.config().side,
                bank,
                0,
                bursts,
                (table.config().bank_row_bytes / g).max(1),
                pushtap_pim::Op::Read,
                useful.min(64),
                at,
            );
            end = end.max(done);
        }
        end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushtap_format::compact_layout;
    use pushtap_oltp::{AccessModel, TableConfig};
    use pushtap_pim::{BankAddr, Geometry, Side};

    fn test_table(n_rows: u64) -> HtapTable {
        let schema = pushtap_format::paper_example_schema();
        let layout = compact_layout(&schema, 8, 0.6).unwrap();
        let g = Geometry::dimm();
        HtapTable::new(
            layout,
            TableConfig {
                n_rows,
                delta_rows: 128,
                block_rows: 64,
                shards: g.bank_addrs().collect(),
                base_dram_row: 0,
                model: AccessModel::Unified,
                side: Side::Pim,
                granularity: g.granularity,
                bank_row_bytes: g.row_bytes,
                rows_per_bank: g.rows_per_bank,
            },
        )
    }

    fn engines() -> (ScanEngine, ScanEngine, SystemConfig) {
        let cfg = SystemConfig::dimm();
        (
            ScanEngine::new(ControlArch::Pushtap, &cfg),
            ScanEngine::new(ControlArch::Original, &cfg),
            cfg,
        )
    }

    #[test]
    fn scan_times_scale_with_rows() {
        let (push, _, _) = engines();
        let schema = pushtap_format::paper_example_schema();
        let col = schema.index_of("w_id").unwrap();
        let mut mem = MemSystem::dimm();
        let small = push.scan_column(
            &test_table(100_000),
            col,
            PimOpKind::Filter,
            &mut mem,
            Ps::ZERO,
        );
        let mut mem2 = MemSystem::dimm();
        let large = push.scan_column(
            &test_table(10_000_000),
            col,
            PimOpKind::Filter,
            &mut mem2,
            Ps::ZERO,
        );
        assert!(large.end > small.end);
        assert!(large.phases >= small.phases);
    }

    /// Fig. 12(b)'s mechanism: the original architecture pays per-unit
    /// control on every phase, PUSHtap a single disguised access — the
    /// original is several times slower at the default 64 kB WRAM.
    #[test]
    fn pushtap_control_beats_original() {
        let (push, orig, _) = engines();
        let schema = pushtap_format::paper_example_schema();
        let col = schema.index_of("w_id").unwrap();
        let table = test_table(4_000_000);
        let mut mem = MemSystem::dimm();
        let p = push.scan_column(&table, col, PimOpKind::Filter, &mut mem, Ps::ZERO);
        let mut mem2 = MemSystem::dimm();
        let o = orig.scan_column(&table, col, PimOpKind::Filter, &mut mem2, Ps::ZERO);
        assert!(o.end > p.end, "original {} vs pushtap {}", o.end, p.end);
        assert!(o.control_time > p.control_time * 10);
        // Original blocks the CPU for the entire offload.
        assert!(o.cpu_blocked > p.cpu_blocked);
    }

    #[test]
    fn fragmentation_increases_scan_time() {
        let (push, _, _) = engines();
        let schema = pushtap_format::paper_example_schema();
        let col = schema.index_of("w_id").unwrap();
        // The same table, but with live delta rows (fragmentation).
        let clean = test_table(500_000);
        let mut fragged = test_table(500_000);
        let mut mem = MemSystem::dimm();
        let meter = pushtap_oltp::Meter::new(
            pushtap_oltp::CostModel::default(),
            pushtap_pim::CpuSpec::xeon_like(),
        );
        for i in 0..100u64 {
            fragged
                .timed_update(
                    &mut mem,
                    &meter,
                    i * 64, // distinct rows in distinct blocks
                    pushtap_mvcc::Ts(i + 1),
                    &[(0, vec![1, 1])],
                    Ps::ZERO,
                )
                .unwrap();
        }
        // Fragmentation only matters at scale; compare scanned bytes.
        let mut m1 = MemSystem::dimm();
        let mut m2 = MemSystem::dimm();
        let a = push.scan_column(&clean, col, PimOpKind::Filter, &mut m1, Ps::ZERO);
        let b = push.scan_column(&fragged, col, PimOpKind::Filter, &mut m2, Ps::ZERO);
        assert!(b.bytes_per_unit >= a.bytes_per_unit);
        assert!(m2.stats().pim_loaded > m1.stats().pim_loaded);
    }

    #[test]
    fn load_phase_blocks_cpu_banks() {
        let (push, _, _) = engines();
        let schema = pushtap_format::paper_example_schema();
        let col = schema.index_of("w_id").unwrap();
        let table = test_table(2_000_000);
        let mut mem = MemSystem::dimm();
        let out = push.scan_column(&table, col, PimOpKind::Filter, &mut mem, Ps::ZERO);
        assert!(out.cpu_blocked > Ps::ZERO);
        // But not for the whole scan: compute phases leave the CPU free.
        assert!(out.cpu_blocked < out.end);
        // A CPU access issued during the scan completes before its end
        // (it only waits for the current load phase).
        let r = mem.access(
            Side::Pim,
            BankAddr::new(0, 0, 0),
            0,
            pushtap_pim::Op::Read,
            64,
            Ps::ZERO,
        );
        assert!(r.done < out.end);
    }

    #[test]
    fn effective_bandwidth_reflects_column_width() {
        let (push, _, _) = engines();
        let schema = pushtap_format::paper_example_schema();
        // w_id is 4 bytes in a 4-byte part at th=0.6 → fully effective.
        let col = schema.index_of("w_id").unwrap();
        let table = test_table(100_000);
        let mut mem = MemSystem::dimm();
        push.scan_column(&table, col, PimOpKind::Filter, &mut mem, Ps::ZERO);
        assert!(mem.stats().pim_effective() > 0.99);
    }

    #[test]
    fn cpu_scan_covers_normal_columns() {
        let (push, _, _) = engines();
        let schema = pushtap_format::paper_example_schema();
        let zip = schema.index_of("zip").unwrap();
        let table = test_table(100_000);
        let mut mem = MemSystem::dimm();
        let end = push.cpu_scan_column(&table, zip, &mut mem, Ps::ZERO);
        assert!(end > Ps::ZERO);
        assert!(mem.stats().cpu_fetched > 0);
    }

    #[test]
    #[should_panic(expected = "device-local")]
    fn pim_scan_rejects_normal_columns() {
        let (push, _, _) = engines();
        let schema = pushtap_format::paper_example_schema();
        let zip = schema.index_of("zip").unwrap();
        let table = test_table(1000);
        let mut mem = MemSystem::dimm();
        push.scan_column(&table, zip, PimOpKind::Filter, &mut mem, Ps::ZERO);
    }
}
