//! Launch-request encodings (Fig. 7(b)).
//!
//! A launch request is disguised as a 64-byte memory write to a reserved
//! physical address: one type byte plus 63 parameter bytes. The field
//! widths below are byte-exact to the figure; all multi-byte fields are
//! little-endian. PIM units interpret the parameter block according to the
//! type byte (the "dual-level configurability" of §6.1).

use pushtap_pim::{LaunchPayload, PimOpKind};

/// Operation type bytes on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum TypeByte {
    Ls = 0,
    Filter = 1,
    Group = 2,
    Aggregation = 3,
    Hash = 4,
    Join = 5,
    Defragment = 6,
}

fn put(bytes: &mut Vec<u8>, value: u64, width: usize) {
    bytes.extend_from_slice(&value.to_le_bytes()[..width]);
}

fn get(bytes: &[u8], cursor: &mut usize, width: usize) -> u64 {
    let mut le = [0u8; 8];
    le[..width].copy_from_slice(&bytes[*cursor..*cursor + width]);
    *cursor += width;
    u64::from_le_bytes(le)
}

/// The Fig. 7(b) request set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchRequest {
    /// Load/store phase: move data between DRAM and WRAM.
    /// Fields: `result_addr(3) result_len(2) result_offset(2)
    /// result_stride(2) op0_addr(3) op0_len(2) op0_offset(2) op0_stride(2)`.
    Ls {
        /// DRAM address to store last phase's results to (3 bytes).
        result_addr: u32,
        /// Result length in bytes (2 bytes).
        result_len: u16,
        /// WRAM offset of the results (2 bytes).
        result_offset: u16,
        /// Per-unit stride applied to `result_addr` (2 bytes).
        result_stride: u16,
        /// DRAM address of the next operand block (3 bytes).
        op0_addr: u32,
        /// Operand length in bytes (2 bytes).
        op0_len: u16,
        /// WRAM offset for the operand (2 bytes).
        op0_offset: u16,
        /// Per-unit stride applied to `op0_addr` (2 bytes); the real
        /// address loaded by PIM unit *i* is `op0_stride * i + op0_addr`
        /// (§6.2, block-circulant placement).
        op0_stride: u16,
    },
    /// Predicate evaluation.
    /// Fields: `bitmap_offset(2) data_offset(2) result_offset(2)
    /// data_width(1) condition(8)`.
    Filter {
        /// WRAM offset of the snapshot bitmap slice (2 bytes).
        bitmap_offset: u16,
        /// WRAM offset of the column data (2 bytes).
        data_offset: u16,
        /// WRAM offset for the result bitmap (2 bytes).
        result_offset: u16,
        /// Element width in bytes (1 byte).
        data_width: u8,
        /// Packed predicate: comparison plus bound(s) (8 bytes).
        condition: u64,
    },
    /// Group-index computation for `GROUP BY`.
    /// Fields: `bitmap_offset(2) data_offset(2) dict_offset(2)
    /// result_offset(2) data_width(1)`.
    Group {
        /// WRAM offset of the snapshot bitmap slice (2 bytes).
        bitmap_offset: u16,
        /// WRAM offset of the column data (2 bytes).
        data_offset: u16,
        /// WRAM offset of the group dictionary (2 bytes).
        dict_offset: u16,
        /// WRAM offset for the group indices (2 bytes).
        result_offset: u16,
        /// Element width in bytes (1 byte).
        data_width: u8,
    },
    /// Indexed accumulation.
    /// Fields: `bitmap_offset(2) data_offset(2) index_offset(2)
    /// result_offset(2) data_width(1)`.
    Aggregation {
        /// WRAM offset of the snapshot bitmap slice (2 bytes).
        bitmap_offset: u16,
        /// WRAM offset of the column data (2 bytes).
        data_offset: u16,
        /// WRAM offset of the group indices (2 bytes).
        index_offset: u16,
        /// WRAM offset for the accumulators (2 bytes).
        result_offset: u16,
        /// Element width in bytes (1 byte).
        data_width: u8,
    },
    /// Join-key hashing.
    /// Fields: `bitmap_offset(2) data_offset(2) result_offset(2)
    /// hash_function(4) data_width(1)`.
    Hash {
        /// WRAM offset of the snapshot bitmap slice (2 bytes).
        bitmap_offset: u16,
        /// WRAM offset of the key column (2 bytes).
        data_offset: u16,
        /// WRAM offset for the hash values (2 bytes).
        result_offset: u16,
        /// Hash-function selector/seed (4 bytes).
        hash_function: u32,
        /// Element width in bytes (1 byte).
        data_width: u8,
    },
    /// Bucket-local hash-join probe.
    /// Fields: `hash1_offset(2) hash2_offset(2) result_offset(2)
    /// data_width(1)`.
    Join {
        /// WRAM offset of the build-side hashes (2 bytes).
        hash1_offset: u16,
        /// WRAM offset of the probe-side hashes (2 bytes).
        hash2_offset: u16,
        /// WRAM offset for the match list (2 bytes).
        result_offset: u16,
        /// Element width in bytes (1 byte).
        data_width: u8,
    },
    /// Version copy-back.
    /// Fields: `meta_addr(3) data_addr(3) data_stride(2) delta_addr(3)
    /// delta_stride(2)`.
    Defragment {
        /// DRAM address of the broadcast metadata (3 bytes).
        meta_addr: u32,
        /// Data-region base address (3 bytes).
        data_addr: u32,
        /// Data-region row stride (2 bytes).
        data_stride: u16,
        /// Delta-region base address (3 bytes).
        delta_addr: u32,
        /// Delta-region row stride (2 bytes).
        delta_stride: u16,
    },
}

/// Errors from decoding a launch payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The unrecognised type byte.
    pub type_byte: u8,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown launch type byte {}", self.type_byte)
    }
}

impl std::error::Error for DecodeError {}

impl LaunchRequest {
    /// The PIM operation this request launches.
    pub fn op_kind(&self) -> PimOpKind {
        match self {
            LaunchRequest::Ls { .. } => PimOpKind::Ls,
            LaunchRequest::Filter { .. } => PimOpKind::Filter,
            LaunchRequest::Group { .. } => PimOpKind::Group,
            LaunchRequest::Aggregation { .. } => PimOpKind::Aggregate,
            LaunchRequest::Hash { .. } => PimOpKind::Hash,
            LaunchRequest::Join { .. } => PimOpKind::Join,
            LaunchRequest::Defragment { .. } => PimOpKind::Defragment,
        }
    }

    /// Encodes the request as the 64-byte wire payload.
    pub fn encode(&self) -> LaunchPayload {
        let mut p = Vec::with_capacity(63);
        let ty = match self {
            LaunchRequest::Ls {
                result_addr,
                result_len,
                result_offset,
                result_stride,
                op0_addr,
                op0_len,
                op0_offset,
                op0_stride,
            } => {
                put(&mut p, *result_addr as u64, 3);
                put(&mut p, *result_len as u64, 2);
                put(&mut p, *result_offset as u64, 2);
                put(&mut p, *result_stride as u64, 2);
                put(&mut p, *op0_addr as u64, 3);
                put(&mut p, *op0_len as u64, 2);
                put(&mut p, *op0_offset as u64, 2);
                put(&mut p, *op0_stride as u64, 2);
                TypeByte::Ls
            }
            LaunchRequest::Filter {
                bitmap_offset,
                data_offset,
                result_offset,
                data_width,
                condition,
            } => {
                put(&mut p, *bitmap_offset as u64, 2);
                put(&mut p, *data_offset as u64, 2);
                put(&mut p, *result_offset as u64, 2);
                put(&mut p, *data_width as u64, 1);
                put(&mut p, *condition, 8);
                TypeByte::Filter
            }
            LaunchRequest::Group {
                bitmap_offset,
                data_offset,
                dict_offset,
                result_offset,
                data_width,
            } => {
                put(&mut p, *bitmap_offset as u64, 2);
                put(&mut p, *data_offset as u64, 2);
                put(&mut p, *dict_offset as u64, 2);
                put(&mut p, *result_offset as u64, 2);
                put(&mut p, *data_width as u64, 1);
                TypeByte::Group
            }
            LaunchRequest::Aggregation {
                bitmap_offset,
                data_offset,
                index_offset,
                result_offset,
                data_width,
            } => {
                put(&mut p, *bitmap_offset as u64, 2);
                put(&mut p, *data_offset as u64, 2);
                put(&mut p, *index_offset as u64, 2);
                put(&mut p, *result_offset as u64, 2);
                put(&mut p, *data_width as u64, 1);
                TypeByte::Aggregation
            }
            LaunchRequest::Hash {
                bitmap_offset,
                data_offset,
                result_offset,
                hash_function,
                data_width,
            } => {
                put(&mut p, *bitmap_offset as u64, 2);
                put(&mut p, *data_offset as u64, 2);
                put(&mut p, *result_offset as u64, 2);
                put(&mut p, *hash_function as u64, 4);
                put(&mut p, *data_width as u64, 1);
                TypeByte::Hash
            }
            LaunchRequest::Join {
                hash1_offset,
                hash2_offset,
                result_offset,
                data_width,
            } => {
                put(&mut p, *hash1_offset as u64, 2);
                put(&mut p, *hash2_offset as u64, 2);
                put(&mut p, *result_offset as u64, 2);
                put(&mut p, *data_width as u64, 1);
                TypeByte::Join
            }
            LaunchRequest::Defragment {
                meta_addr,
                data_addr,
                data_stride,
                delta_addr,
                delta_stride,
            } => {
                put(&mut p, *meta_addr as u64, 3);
                put(&mut p, *data_addr as u64, 3);
                put(&mut p, *data_stride as u64, 2);
                put(&mut p, *delta_addr as u64, 3);
                put(&mut p, *delta_stride as u64, 2);
                TypeByte::Defragment
            }
        };
        LaunchPayload::new(ty as u8, &p)
    }

    /// Decodes a wire payload.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for an unknown type byte.
    pub fn decode(payload: &LaunchPayload) -> Result<LaunchRequest, DecodeError> {
        let p = payload.params();
        let mut c = 0usize;
        Ok(match payload.op_type() {
            0 => LaunchRequest::Ls {
                result_addr: get(p, &mut c, 3) as u32,
                result_len: get(p, &mut c, 2) as u16,
                result_offset: get(p, &mut c, 2) as u16,
                result_stride: get(p, &mut c, 2) as u16,
                op0_addr: get(p, &mut c, 3) as u32,
                op0_len: get(p, &mut c, 2) as u16,
                op0_offset: get(p, &mut c, 2) as u16,
                op0_stride: get(p, &mut c, 2) as u16,
            },
            1 => LaunchRequest::Filter {
                bitmap_offset: get(p, &mut c, 2) as u16,
                data_offset: get(p, &mut c, 2) as u16,
                result_offset: get(p, &mut c, 2) as u16,
                data_width: get(p, &mut c, 1) as u8,
                condition: get(p, &mut c, 8),
            },
            2 => LaunchRequest::Group {
                bitmap_offset: get(p, &mut c, 2) as u16,
                data_offset: get(p, &mut c, 2) as u16,
                dict_offset: get(p, &mut c, 2) as u16,
                result_offset: get(p, &mut c, 2) as u16,
                data_width: get(p, &mut c, 1) as u8,
            },
            3 => LaunchRequest::Aggregation {
                bitmap_offset: get(p, &mut c, 2) as u16,
                data_offset: get(p, &mut c, 2) as u16,
                index_offset: get(p, &mut c, 2) as u16,
                result_offset: get(p, &mut c, 2) as u16,
                data_width: get(p, &mut c, 1) as u8,
            },
            4 => LaunchRequest::Hash {
                bitmap_offset: get(p, &mut c, 2) as u16,
                data_offset: get(p, &mut c, 2) as u16,
                result_offset: get(p, &mut c, 2) as u16,
                hash_function: get(p, &mut c, 4) as u32,
                data_width: get(p, &mut c, 1) as u8,
            },
            5 => LaunchRequest::Join {
                hash1_offset: get(p, &mut c, 2) as u16,
                hash2_offset: get(p, &mut c, 2) as u16,
                result_offset: get(p, &mut c, 2) as u16,
                data_width: get(p, &mut c, 1) as u8,
            },
            6 => LaunchRequest::Defragment {
                meta_addr: get(p, &mut c, 3) as u32,
                data_addr: get(p, &mut c, 3) as u32,
                data_stride: get(p, &mut c, 2) as u16,
                delta_addr: get(p, &mut c, 3) as u32,
                delta_stride: get(p, &mut c, 2) as u16,
            },
            other => return Err(DecodeError { type_byte: other }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<LaunchRequest> {
        vec![
            LaunchRequest::Ls {
                result_addr: 0x123456,
                result_len: 512,
                result_offset: 0,
                result_stride: 64,
                op0_addr: 0xABCDEF,
                op0_len: 32_768,
                op0_offset: 1024,
                op0_stride: 4096,
            },
            LaunchRequest::Filter {
                bitmap_offset: 1,
                data_offset: 2,
                result_offset: 3,
                data_width: 8,
                condition: 0xDEADBEEF,
            },
            LaunchRequest::Group {
                bitmap_offset: 1,
                data_offset: 2,
                dict_offset: 3,
                result_offset: 4,
                data_width: 1,
            },
            LaunchRequest::Aggregation {
                bitmap_offset: 1,
                data_offset: 2,
                index_offset: 3,
                result_offset: 4,
                data_width: 8,
            },
            LaunchRequest::Hash {
                bitmap_offset: 1,
                data_offset: 2,
                result_offset: 3,
                hash_function: 0x9E3779B9,
                data_width: 4,
            },
            LaunchRequest::Join {
                hash1_offset: 1,
                hash2_offset: 2,
                result_offset: 3,
                data_width: 4,
            },
            LaunchRequest::Defragment {
                meta_addr: 0x111111,
                data_addr: 0x222222,
                data_stride: 56,
                delta_addr: 0x333333,
                delta_stride: 56,
            },
        ]
    }

    #[test]
    fn round_trip_every_request() {
        for r in all_requests() {
            let decoded = LaunchRequest::decode(&r.encode()).unwrap();
            assert_eq!(decoded, r);
        }
    }

    /// Field widths are byte-exact to Fig. 7(b): check a known encoding.
    #[test]
    fn filter_wire_layout() {
        let r = LaunchRequest::Filter {
            bitmap_offset: 0x0102,
            data_offset: 0x0304,
            result_offset: 0x0506,
            data_width: 8,
            condition: 0x1122334455667788,
        };
        let p = r.encode();
        assert_eq!(p.op_type(), 1);
        let params = p.params();
        assert_eq!(&params[0..2], &[0x02, 0x01]); // bitmap_offset LE
        assert_eq!(&params[2..4], &[0x04, 0x03]);
        assert_eq!(&params[4..6], &[0x06, 0x05]);
        assert_eq!(params[6], 8);
        assert_eq!(&params[7..15], &0x1122334455667788u64.to_le_bytes());
    }

    /// The LS parameter block is 18 bytes: 3+2+2+2 + 3+2+2+2.
    #[test]
    fn ls_parameter_length() {
        let r = &all_requests()[0];
        let p = r.encode();
        // Bytes beyond the fields are zero.
        assert!(p.params()[18..].iter().all(|&b| b == 0));
    }

    #[test]
    fn op_kind_mapping() {
        use PimOpKind::*;
        let kinds: Vec<PimOpKind> = all_requests().iter().map(LaunchRequest::op_kind).collect();
        assert_eq!(
            kinds,
            vec![Ls, Filter, Group, Aggregate, Hash, Join, Defragment]
        );
    }

    #[test]
    fn unknown_type_byte_errors() {
        let p = LaunchPayload::new(9, &[]);
        let e = LaunchRequest::decode(&p).unwrap_err();
        assert_eq!(e.type_byte, 9);
        assert!(e.to_string().contains('9'));
    }
}
