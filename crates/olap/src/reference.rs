//! Reference query executor: a naive row-at-a-time evaluator that
//! resolves MVCC visibility directly through the version chains (not the
//! bitmaps). Used by tests to validate that the PIM execution path —
//! snapshot bitmaps included — returns exactly the right values.

use std::collections::{BTreeMap, HashSet};

use pushtap_chbench::{dec_u64, Table};
use pushtap_format::RowSlot;
use pushtap_mvcc::Ts;
use pushtap_oltp::{HtapTable, TpccDb};

use crate::query::{
    Q1Row, Q9Row, QueryResult, DELIVERY_CUTOFF, PRICE_MODULUS, Q9_GROUPS, QUANTITY_MAX,
};

/// Resolves the version of `row` visible at `ts` by walking the chain
/// metadata (independent of the snapshot bitmaps).
fn resolve(table: &HtapTable, row: u64, ts: Ts) -> RowSlot {
    let mut slot = table.chains().newest_slot(row);
    loop {
        match table.chains().meta(slot) {
            Some(m) if m.write_ts > ts => {
                slot = m.prev.expect("chain terminates at origin");
            }
            _ => return slot,
        }
    }
}

fn value(table: &HtapTable, row: u64, col: &str, ts: Ts) -> u64 {
    let c = table.layout().schema().index_of(col).expect("column");
    dec_u64(&table.store().read_value(resolve(table, row, ts), c))
}

/// Reference Q6: `SUM(ol_amount)` under the date/quantity predicates, as
/// of timestamp `ts`.
pub fn ref_q6(db: &TpccDb, ts: Ts) -> QueryResult {
    let ol = db.table(Table::OrderLine);
    let mut revenue = 0u64;
    for row in 0..ol.n_rows() {
        if value(ol, row, "ol_delivery_d", ts) <= DELIVERY_CUTOFF {
            continue;
        }
        if value(ol, row, "ol_quantity", ts) <= QUANTITY_MAX {
            revenue = revenue.wrapping_add(value(ol, row, "ol_amount", ts));
        }
    }
    QueryResult::Q6 { revenue }
}

/// Reference Q1: pricing summary grouped by `ol_number`, as of `ts`.
pub fn ref_q1(db: &TpccDb, ts: Ts) -> QueryResult {
    let ol = db.table(Table::OrderLine);
    let mut groups: BTreeMap<u64, Q1Row> = BTreeMap::new();
    for row in 0..ol.n_rows() {
        if value(ol, row, "ol_delivery_d", ts) <= DELIVERY_CUTOFF {
            continue;
        }
        let num = value(ol, row, "ol_number", ts);
        let e = groups.entry(num).or_insert(Q1Row {
            ol_number: num,
            sum_qty: 0,
            sum_amount: 0,
            count: 0,
        });
        e.sum_qty = e.sum_qty.wrapping_add(value(ol, row, "ol_quantity", ts));
        e.sum_amount = e.sum_amount.wrapping_add(value(ol, row, "ol_amount", ts));
        e.count += 1;
    }
    QueryResult::Q1(groups.into_values().collect())
}

/// Reference Q9: item/order-line semi-join aggregate, as of `ts`.
pub fn ref_q9(db: &TpccDb, ts: Ts) -> QueryResult {
    let it = db.table(Table::Item);
    let ol = db.table(Table::OrderLine);
    let mut matching: HashSet<u64> = HashSet::new();
    for row in 0..it.n_rows() {
        if value(it, row, "i_price", ts).is_multiple_of(PRICE_MODULUS) {
            matching.insert(value(it, row, "i_id", ts));
        }
    }
    let mut groups: BTreeMap<u64, u64> = BTreeMap::new();
    for row in 0..ol.n_rows() {
        let iid = value(ol, row, "ol_i_id", ts);
        if matching.contains(&iid) {
            let g = groups.entry(iid % Q9_GROUPS).or_insert(0);
            *g = g.wrapping_add(value(ol, row, "ol_amount", ts));
        }
    }
    QueryResult::Q9(
        groups
            .into_iter()
            .map(|(group, sum_amount)| Q9Row { group, sum_amount })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ScanEngine;
    use crate::query::Query;
    use pushtap_chbench::TxnGen;
    use pushtap_oltp::DbConfig;
    use pushtap_pim::{ControlArch, MemSystem, Ps, SystemConfig};

    /// The headline correctness property of the whole engine: after a
    /// burst of transactions and a snapshot, the PIM execution path
    /// (bitmap-visibility scans) returns exactly the reference executor's
    /// answer at the snapshot timestamp — data freshness with value
    /// correctness.
    #[test]
    fn engine_matches_reference_after_updates() {
        let mut mem = MemSystem::dimm();
        let mut db = TpccDb::build(&DbConfig::small(), &mem).unwrap();
        let engine = ScanEngine::new(ControlArch::Pushtap, &SystemConfig::dimm());
        let mut tg = TxnGen::new(
            3,
            db.table(Table::Warehouse).n_rows(),
            db.table(Table::Customer).n_rows(),
            db.table(Table::Item).n_rows(),
            db.table(Table::Stock).n_rows(),
        );
        let mut now = Ps::ZERO;
        for txn in tg.batch(120) {
            now = db.execute(&txn, &mut mem, now).expect("commit").end;
        }
        let ts = db.last_ts();
        // Snapshot every table the queries touch.
        let meter = *db.meter();
        for t in [Table::OrderLine, Table::Item] {
            db.table_mut(t)
                .timed_snapshot_update(&mut mem, &meter, ts, now);
        }
        for q in Query::ALL {
            let (engine_result, _) = q.execute(&db, &engine, &mut mem, now);
            let reference = match q {
                Query::Q1 => ref_q1(&db, ts),
                Query::Q6 => ref_q6(&db, ts),
                Query::Q9 => ref_q9(&db, ts),
            };
            assert_eq!(engine_result, reference, "{} diverged", q.name());
        }
    }

    /// Without snapshotting, the engine must answer as of the *last*
    /// snapshot — not see uncommitted-to-snapshot data (isolation).
    #[test]
    fn queries_ignore_unsnapshotted_updates() {
        let mut mem = MemSystem::dimm();
        let mut db = TpccDb::build(&DbConfig::small(), &mem).unwrap();
        let engine = ScanEngine::new(ControlArch::Pushtap, &SystemConfig::dimm());
        let (before, _) = Query::Q6.execute(&db, &engine, &mut mem, Ps::ZERO);
        // Touch order lines directly: bump amounts via the OLTP path.
        let mut tg = TxnGen::new(
            9,
            db.table(Table::Warehouse).n_rows(),
            db.table(Table::Customer).n_rows(),
            db.table(Table::Item).n_rows(),
            db.table(Table::Stock).n_rows(),
        );
        let mut now = Ps::ZERO;
        for txn in tg.batch(60) {
            now = db.execute(&txn, &mut mem, now).expect("commit").end;
        }
        let (after_no_snap, _) = Query::Q6.execute(&db, &engine, &mut mem, now);
        assert_eq!(before, after_no_snap, "snapshot isolation violated");
        // After snapshotting, inserts into ORDERLINE become visible.
        let ts = db.last_ts();
        let meter = *db.meter();
        db.table_mut(Table::OrderLine)
            .timed_snapshot_update(&mut mem, &meter, ts, now);
        let (_, timing) = Query::Q6.execute(&db, &engine, &mut mem, now);
        assert!(timing.end > now);
    }

    /// Reference results at an *old* timestamp reconstruct history (time
    /// travel through the version chains).
    #[test]
    fn reference_time_travel() {
        let mut mem = MemSystem::dimm();
        let mut db = TpccDb::build(&DbConfig::small(), &mem).unwrap();
        let t0 = db.last_ts();
        let q_at_t0 = ref_q6(&db, t0);
        let mut tg = TxnGen::new(
            5,
            db.table(Table::Warehouse).n_rows(),
            db.table(Table::Customer).n_rows(),
            db.table(Table::Item).n_rows(),
            db.table(Table::Stock).n_rows(),
        );
        let mut now = Ps::ZERO;
        for txn in tg.batch(60) {
            now = db.execute(&txn, &mut mem, now).expect("commit").end;
        }
        // The answer at t0 is stable even after more commits.
        assert_eq!(ref_q6(&db, t0), q_at_t0);
    }
}
