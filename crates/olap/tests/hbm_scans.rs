//! Scan-engine behaviour on the HBM-based system (§7.3): same semantics,
//! different geometry — 32 channels, 64 B granularity, single-device
//! ranks — and the bandwidth relationships the paper reports.

use pushtap_olap::{Query, ScanEngine};
use pushtap_oltp::{DbConfig, TpccDb};
use pushtap_pim::{ControlArch, MemSystem, PimOpKind, Ps, SystemConfig};

fn build(system: SystemConfig) -> (TpccDb, MemSystem, ScanEngine) {
    let mem = MemSystem::new(system);
    let db = TpccDb::build(&DbConfig::small(), &mem).expect("build");
    let engine = ScanEngine::new(ControlArch::Pushtap, &system);
    (db, mem, engine)
}

/// Q6 produces identical *values* on DIMM and HBM — only timing differs.
#[test]
fn same_answers_on_both_geometries() {
    let (dimm_db, mut dimm_mem, dimm_engine) = build(SystemConfig::dimm());
    let (hbm_db, mut hbm_mem, hbm_engine) = build(SystemConfig::hbm());
    for q in Query::ALL {
        let (a, _) = q.execute(&dimm_db, &dimm_engine, &mut dimm_mem, Ps::ZERO);
        let (b, _) = q.execute(&hbm_db, &hbm_engine, &mut hbm_mem, Ps::ZERO);
        assert_eq!(a, b, "{} diverged across geometries", q.name());
    }
}

/// Both systems expose the same PIM-unit count (§7.1), so per-unit scan
/// volume matches and the PIM-side scan time is comparable; HBM's higher
/// per-access speed shows up in the CPU-visible coordination instead.
#[test]
fn equal_unit_counts_equal_scan_volume() {
    let dimm = SystemConfig::dimm();
    let hbm = SystemConfig::hbm();
    assert_eq!(dimm.pim_geometry.pim_units(), hbm.pim_geometry.pim_units());
    let (db_d, mut mem_d, eng_d) = build(dimm);
    let (db_h, mut mem_h, eng_h) = build(hbm);
    let ol = pushtap_chbench::Table::OrderLine;
    let col = db_d
        .table(ol)
        .layout()
        .schema()
        .index_of("ol_amount")
        .unwrap();
    let out_d = eng_d.scan_column(db_d.table(ol), col, PimOpKind::Filter, &mut mem_d, Ps::ZERO);
    // On HBM the layout degenerates to one device; find the column there.
    let col_h = db_h
        .table(ol)
        .layout()
        .schema()
        .index_of("ol_amount")
        .unwrap();
    let out_h = eng_h.scan_column(
        db_h.table(ol),
        col_h,
        PimOpKind::Filter,
        &mut mem_h,
        Ps::ZERO,
    );
    // Same unit count and same WRAM ⇒ the same number of phases per unit
    // up to layout-width differences.
    assert!(out_d.phases > 0 && out_h.phases > 0);
    assert!(out_h.bytes_per_unit <= out_d.bytes_per_unit * 2);
}

/// HBM's single-device layout keeps every key column fully effective
/// (each key leads its own part), so PIM effective bandwidth is 100 %.
#[test]
fn hbm_layout_is_fully_pim_effective() {
    let (db, mut mem, engine) = build(SystemConfig::hbm());
    let ol = pushtap_chbench::Table::OrderLine;
    let col = db
        .table(ol)
        .layout()
        .schema()
        .index_of("ol_amount")
        .unwrap();
    engine.scan_column(db.table(ol), col, PimOpKind::Filter, &mut mem, Ps::ZERO);
    assert!(mem.stats().pim_effective() > 0.99);
}

/// Mode-switch accounting is identical across geometries (0.2 µs/rank,
/// handled by the scheduler in parallel).
#[test]
fn control_costs_track_geometry() {
    use pushtap_pim::ControlModel;
    let dimm = ControlModel::new(ControlArch::Pushtap, &SystemConfig::dimm());
    let hbm = ControlModel::new(ControlArch::Pushtap, &SystemConfig::hbm());
    // PUSHtap's scheduler pays one burst + decode (+ handover for LS):
    // HBM's shorter burst makes its launch marginally cheaper.
    assert!(hbm.launch(PimOpKind::Filter) <= dimm.launch(PimOpKind::Filter));
    assert_eq!(
        dimm.launch(PimOpKind::Ls) - dimm.launch(PimOpKind::Filter),
        Ps::from_us(0.2)
    );
    assert_eq!(
        hbm.launch(PimOpKind::Ls) - hbm.launch(PimOpKind::Filter),
        Ps::from_us(0.2)
    );
}
