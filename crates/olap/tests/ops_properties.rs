//! Property tests of the Fig. 7(b) launch-request wire format: every
//! field value survives the 64-byte encode/decode round trip, and the
//! payload never exceeds the type byte + 63 parameter bytes.

use proptest::prelude::*;
use pushtap_olap::LaunchRequest;

fn arb_request() -> impl Strategy<Value = LaunchRequest> {
    prop_oneof![
        (
            0u32..1 << 24,
            any::<u16>(),
            any::<u16>(),
            any::<u16>(),
            0u32..1 << 24,
            any::<u16>(),
            any::<u16>(),
            any::<u16>(),
        )
            .prop_map(
                |(
                    result_addr,
                    result_len,
                    result_offset,
                    result_stride,
                    op0_addr,
                    op0_len,
                    op0_offset,
                    op0_stride,
                )| {
                    LaunchRequest::Ls {
                        result_addr,
                        result_len,
                        result_offset,
                        result_stride,
                        op0_addr,
                        op0_len,
                        op0_offset,
                        op0_stride,
                    }
                }
            ),
        (
            any::<u16>(),
            any::<u16>(),
            any::<u16>(),
            any::<u8>(),
            any::<u64>()
        )
            .prop_map(
                |(bitmap_offset, data_offset, result_offset, data_width, condition)| {
                    LaunchRequest::Filter {
                        bitmap_offset,
                        data_offset,
                        result_offset,
                        data_width,
                        condition,
                    }
                }
            ),
        (
            any::<u16>(),
            any::<u16>(),
            any::<u16>(),
            any::<u16>(),
            any::<u8>()
        )
            .prop_map(
                |(bitmap_offset, data_offset, dict_offset, result_offset, data_width)| {
                    LaunchRequest::Group {
                        bitmap_offset,
                        data_offset,
                        dict_offset,
                        result_offset,
                        data_width,
                    }
                }
            ),
        (
            any::<u16>(),
            any::<u16>(),
            any::<u16>(),
            any::<u16>(),
            any::<u8>()
        )
            .prop_map(
                |(bitmap_offset, data_offset, index_offset, result_offset, data_width)| {
                    LaunchRequest::Aggregation {
                        bitmap_offset,
                        data_offset,
                        index_offset,
                        result_offset,
                        data_width,
                    }
                }
            ),
        (
            any::<u16>(),
            any::<u16>(),
            any::<u16>(),
            any::<u32>(),
            any::<u8>()
        )
            .prop_map(
                |(bitmap_offset, data_offset, result_offset, hash_function, data_width)| {
                    LaunchRequest::Hash {
                        bitmap_offset,
                        data_offset,
                        result_offset,
                        hash_function,
                        data_width,
                    }
                }
            ),
        (any::<u16>(), any::<u16>(), any::<u16>(), any::<u8>()).prop_map(
            |(hash1_offset, hash2_offset, result_offset, data_width)| {
                LaunchRequest::Join {
                    hash1_offset,
                    hash2_offset,
                    result_offset,
                    data_width,
                }
            }
        ),
        (
            0u32..1 << 24,
            0u32..1 << 24,
            any::<u16>(),
            0u32..1 << 24,
            any::<u16>()
        )
            .prop_map(
                |(meta_addr, data_addr, data_stride, delta_addr, delta_stride)| {
                    LaunchRequest::Defragment {
                        meta_addr,
                        data_addr,
                        data_stride,
                        delta_addr,
                        delta_stride,
                    }
                }
            ),
    ]
}

proptest! {
    /// Encode/decode is the identity for every representable request.
    #[test]
    fn round_trip(req in arb_request()) {
        let payload = req.encode();
        let decoded = LaunchRequest::decode(&payload).expect("decode");
        prop_assert_eq!(decoded, req);
    }

    /// The wire image is always exactly 64 bytes with the op type first.
    #[test]
    fn wire_shape(req in arb_request()) {
        let payload = req.encode();
        prop_assert_eq!(payload.as_bytes().len(), 64);
        prop_assert!(payload.op_type() <= 6);
        // Parameter tail beyond the densest encoding (LS: 18 bytes) is 0.
        prop_assert!(payload.params()[20..].iter().all(|&b| b == 0));
    }

    /// Distinct requests produce distinct payloads (the scheduler can
    /// rely on the wire image alone).
    #[test]
    fn injective_on_samples(a in arb_request(), b in arb_request()) {
        if a != b {
            let pa = a.encode();
            let pb = b.encode();
            prop_assert_ne!(pa.as_bytes(), pb.as_bytes());
        }
    }
}
