//! Workspace automation (`cargo run -p xtask -- <command>`).

#![forbid(unsafe_code)]

mod lint;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            if !lint::run() {
                std::process::exit(1);
            }
        }
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint");
            std::process::exit(2);
        }
    }
}
