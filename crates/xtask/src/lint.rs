//! Token-level repo-invariant lint (`cargo run -p xtask -- lint`).
//!
//! Enforces workspace invariants the compiler can't:
//!
//! 1. **determinism** — no `Instant::now` / `SystemTime::now` in
//!    simulation crates (everything under `crates/*/src` except
//!    `xtask`, plus the facade's `src/` and `examples/`): simulated
//!    time comes from `pushtap_pim::Ps` clocks only, so a wall-clock
//!    read is a reproducibility bug;
//! 2. **no `unwrap()`/`expect()` in shard/coordinator non-test code**
//!    (`crates/shard/src`, `#[cfg(test)]` blocks exempt): the
//!    coordinator's failure semantics are explicit — panics carry
//!    typed context (`panic!` with a message, `unreachable!`, or
//!    propagated unwinds), never a generic `Option`/`Result` blowup;
//! 3. **`#![forbid(unsafe_code)]` in every crate root** (vendor shims
//!    included);
//! 4. **no bare `thread::spawn`** anywhere — only scoped threads
//!    (`thread::scope`), so no simulation state can leak past a
//!    batch's lifetime;
//! 5. **every `Phase` variant referenced in `trace_reconcile.rs`** —
//!    the trace-reconciliation suite must keep up with the lifecycle
//!    vocabulary, or new phases ship unverified.
//!
//! The pass is purely lexical: sources are scanned with comments and
//! string/char literals blanked out (offsets preserved), so tokens
//! inside docs, strings, and comments never trigger.

use std::fs;
use std::path::{Path, PathBuf};

/// One lint finding.
struct Violation {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

/// Runs every rule over the workspace; prints findings and returns
/// whether the tree is clean.
pub fn run() -> bool {
    let root = workspace_root();
    let mut violations = Vec::new();

    let crate_srcs = rust_files_under(&root, &["src", "examples"])
        .into_iter()
        .chain(
            crate_dirs(&root.join("crates"))
                .into_iter()
                .flat_map(|c| rust_files_under(&c, &["src", "tests", "examples", "benches"])),
        )
        .collect::<Vec<_>>();
    let vendor_srcs: Vec<PathBuf> = crate_dirs(&root.join("vendor"))
        .into_iter()
        .flat_map(|c| rust_files_under(&c, &["src"]))
        .collect();

    for path in crate_srcs.iter().chain(vendor_srcs.iter()) {
        let Ok(source) = fs::read_to_string(path) else {
            continue;
        };
        let cleaned = blank_noncode(&source);
        let rel = path.strip_prefix(&root).unwrap_or(path);

        if is_simulation_src(rel) {
            for token in ["Instant::now", "SystemTime::now"] {
                for offset in find_token(&cleaned, token) {
                    violations.push(Violation {
                        file: rel.to_path_buf(),
                        line: line_of(&source, offset),
                        rule: "determinism",
                        message: format!("`{token}` in a simulation crate (use `Ps` clocks)"),
                    });
                }
            }
        }

        if rel.starts_with("crates/shard/src") {
            let exempt = cfg_test_ranges(&cleaned);
            for (token, label) in [(".unwrap()", "unwrap()"), (".expect(", "expect()")] {
                for offset in find_token(&cleaned, token) {
                    if exempt.iter().any(|r| r.contains(&offset)) {
                        continue;
                    }
                    violations.push(Violation {
                        file: rel.to_path_buf(),
                        line: line_of(&source, offset),
                        rule: "no-unwrap-in-shard",
                        message: format!(
                            "`{label}` in shard/coordinator non-test code \
                             (panic with typed context instead)"
                        ),
                    });
                }
            }
        }

        for offset in find_token(&cleaned, "thread::spawn") {
            violations.push(Violation {
                file: rel.to_path_buf(),
                line: line_of(&source, offset),
                rule: "scoped-threads-only",
                message: "bare `thread::spawn` (use `thread::scope`)".to_string(),
            });
        }
    }

    check_forbid_unsafe(&root, &mut violations);
    check_phase_coverage(&root, &mut violations);

    for v in &violations {
        println!(
            "{}:{}: [{}] {}",
            v.file.display(),
            v.line,
            v.rule,
            v.message
        );
    }
    if violations.is_empty() {
        println!("xtask lint: workspace clean (5 rules)");
        true
    } else {
        println!("xtask lint: {} violation(s)", violations.len());
        false
    }
}

/// Rule 3: every crate root opts out of `unsafe`.
fn check_forbid_unsafe(root: &Path, violations: &mut Vec<Violation>) {
    let mut roots: Vec<PathBuf> = vec![root.join("src/lib.rs")];
    for dir in crate_dirs(&root.join("crates"))
        .into_iter()
        .chain(crate_dirs(&root.join("vendor")))
    {
        let lib = dir.join("src/lib.rs");
        let main = dir.join("src/main.rs");
        if lib.is_file() {
            roots.push(lib);
        } else if main.is_file() {
            roots.push(main);
        }
    }
    for path in roots {
        let Ok(source) = fs::read_to_string(&path) else {
            continue;
        };
        if !source.contains("#![forbid(unsafe_code)]") {
            violations.push(Violation {
                file: path.strip_prefix(root).unwrap_or(&path).to_path_buf(),
                line: 1,
                rule: "forbid-unsafe",
                message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
            });
        }
    }
}

/// Rule 5: the trace-reconciliation suite exercises every phase.
fn check_phase_coverage(root: &Path, violations: &mut Vec<Violation>) {
    let span = root.join("crates/trace/src/span.rs");
    let suite = root.join("crates/shard/tests/trace_reconcile.rs");
    let (Ok(span_src), Ok(suite_src)) = (fs::read_to_string(&span), fs::read_to_string(&suite))
    else {
        violations.push(Violation {
            file: PathBuf::from("crates/trace/src/span.rs"),
            line: 1,
            rule: "phase-coverage",
            message: "cannot read span.rs / trace_reconcile.rs".to_string(),
        });
        return;
    };
    let variants = phase_variants(&blank_noncode(&span_src));
    if variants.is_empty() {
        violations.push(Violation {
            file: PathBuf::from("crates/trace/src/span.rs"),
            line: 1,
            rule: "phase-coverage",
            message: "found no `Phase` variants to check".to_string(),
        });
        return;
    }
    for v in variants {
        if !suite_src.contains(&format!("Phase::{v}")) {
            violations.push(Violation {
                file: PathBuf::from("crates/shard/tests/trace_reconcile.rs"),
                line: 1,
                rule: "phase-coverage",
                message: format!("`Phase::{v}` is never referenced by the reconciliation suite"),
            });
        }
    }
}

/// Variant identifiers of `pub enum Phase {{ ... }}` in blanked source.
fn phase_variants(cleaned: &str) -> Vec<String> {
    let Some(start) = cleaned.find("pub enum Phase") else {
        return Vec::new();
    };
    let Some(open) = cleaned[start..].find('{').map(|i| start + i) else {
        return Vec::new();
    };
    let Some(close) = matching_brace(cleaned, open) else {
        return Vec::new();
    };
    let mut variants = Vec::new();
    let body = &cleaned[open + 1..close];
    // Variants in this enum are unit-like: an identifier followed by a
    // comma at depth 0 (attributes were blanked along with comments?
    // no — attributes survive, but this enum carries none on variants).
    for piece in body.split(',') {
        let ident: String = piece
            .chars()
            .skip_while(|c| !c.is_ascii_alphabetic())
            .take_while(|c| c.is_ascii_alphanumeric())
            .collect();
        if !ident.is_empty() && ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            variants.push(ident);
        }
    }
    variants
}

/// Whether the file falls under the determinism rule.
fn is_simulation_src(rel: &Path) -> bool {
    if rel.starts_with("crates/xtask") || rel.starts_with("vendor") {
        return false;
    }
    let mut comps = rel.components().map(|c| c.as_os_str().to_string_lossy());
    match comps.next().as_deref() {
        Some("src") | Some("examples") => true,
        Some("crates") => {
            comps.next(); // crate name (xtask excluded above)
            comps.next().as_deref() == Some("src")
        }
        _ => false,
    }
}

/// Byte ranges covered by `#[cfg(test)]`-gated items (the attribute's
/// following brace block).
fn cfg_test_ranges(cleaned: &str) -> Vec<std::ops::Range<usize>> {
    let mut ranges = Vec::new();
    for offset in find_token(cleaned, "#[cfg(test)]") {
        let Some(open) = cleaned[offset..].find('{').map(|i| offset + i) else {
            continue;
        };
        if let Some(close) = matching_brace(cleaned, open) {
            ranges.push(offset..close + 1);
        }
    }
    ranges
}

/// The offset of the `}` matching the `{` at `open`.
fn matching_brace(text: &str, open: usize) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Byte offsets of every occurrence of `token` in `text`.
fn find_token(text: &str, token: &str) -> Vec<usize> {
    let mut offsets = Vec::new();
    let mut from = 0;
    while let Some(i) = text[from..].find(token) {
        offsets.push(from + i);
        from += i + token.len();
    }
    offsets
}

/// 1-based line number of byte `offset` in `source`.
fn line_of(source: &str, offset: usize) -> usize {
    source[..offset].bytes().filter(|&b| b == b'\n').count() + 1
}

/// The workspace root (xtask lives at `<root>/crates/xtask`).
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Immediate subdirectories of `dir` (the member crates).
fn crate_dirs(dir: &Path) -> Vec<PathBuf> {
    let mut dirs: Vec<PathBuf> = fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    dirs
}

/// Every `.rs` file under `base/<sub>` for each listed subdirectory,
/// recursively, sorted for deterministic output.
fn rust_files_under(base: &Path, subs: &[&str]) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for sub in subs {
        collect_rs(&base.join(sub), &mut files);
    }
    files.sort();
    files
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).into_iter().flatten().flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Blanks comments and string/char literals with spaces (newlines and
/// offsets preserved), so token scans only see real code.
fn blank_noncode(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                i = blank_raw_string(bytes, &mut out, i);
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') => {
                out[i] = b' ';
                i = blank_quoted(bytes, &mut out, i + 1);
            }
            b'"' => {
                i = blank_quoted(bytes, &mut out, i);
            }
            b'\'' => {
                // Char literal vs lifetime: a literal is '\...' or 'x'.
                if bytes.get(i + 1) == Some(&b'\\') {
                    out[i] = b' ';
                    i += 1;
                    while i < bytes.len() && bytes[i] != b'\'' {
                        if bytes[i] == b'\\' {
                            out[i] = b' ';
                            i += 1;
                        }
                        if i < bytes.len() && bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                    if i < bytes.len() {
                        out[i] = b' ';
                        i += 1;
                    }
                } else if bytes.get(i + 2) == Some(&b'\'') {
                    out[i] = b' ';
                    out[i + 1] = b' ';
                    out[i + 2] = b' ';
                    i += 3;
                } else {
                    i += 1; // lifetime
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Whether `r`/`br` at `i` starts a raw string (`r"`, `r#"`, `br##"`…),
/// and not an identifier like `row` or a variable `b`.
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Blanks a raw string starting at `i`; returns the offset past it.
fn blank_raw_string(bytes: &[u8], out: &mut [u8], mut i: usize) -> usize {
    if bytes[i] == b'b' {
        out[i] = b' ';
        i += 1;
    }
    out[i] = b' '; // 'r'
    i += 1;
    let mut hashes = 0;
    while bytes.get(i) == Some(&b'#') {
        out[i] = b' ';
        hashes += 1;
        i += 1;
    }
    out[i] = b' '; // opening quote
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'"'
            && bytes[i + 1..].iter().take(hashes).all(|&b| b == b'#')
            && bytes[i + 1..].len() >= hashes
        {
            for k in 0..=hashes {
                out[i + k] = b' ';
            }
            return i + hashes + 1;
        }
        if bytes[i] != b'\n' {
            out[i] = b' ';
        }
        i += 1;
    }
    i
}

/// Blanks a `"…"` literal starting at `i`; returns the offset past it.
fn blank_quoted(bytes: &[u8], out: &mut [u8], mut i: usize) -> usize {
    out[i] = b' '; // opening quote
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                out[i] = b' ';
                if i + 1 < bytes.len() && bytes[i + 1] != b'\n' {
                    out[i + 1] = b' ';
                }
                i += 2;
            }
            b'"' => {
                out[i] = b' ';
                return i + 1;
            }
            b'\n' => i += 1,
            _ => {
                out[i] = b' ';
                i += 1;
            }
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanking_strips_comments_strings_chars_but_keeps_code() {
        let src = r##"
let a = x.unwrap(); // .expect( in a comment
let s = "Instant::now inside a string";
let r = r#"thread::spawn raw"#;
let c = 'x';
let esc = '\n';
let lt: &'static str = "y";
"##;
        let cleaned = blank_noncode(src);
        assert_eq!(cleaned.len(), src.len());
        assert!(cleaned.contains(".unwrap()"));
        assert!(!cleaned.contains("Instant::now"));
        assert!(!cleaned.contains("thread::spawn"));
        assert!(!cleaned.contains(".expect("));
        assert!(cleaned.contains("&'static str"));
    }

    #[test]
    fn cfg_test_ranges_cover_gated_modules() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn b() { y.unwrap(); } }\n";
        let cleaned = blank_noncode(src);
        let ranges = cfg_test_ranges(&cleaned);
        assert_eq!(ranges.len(), 1);
        let offsets = find_token(&cleaned, ".unwrap()");
        assert_eq!(offsets.len(), 2);
        assert!(!ranges[0].contains(&offsets[0]));
        assert!(ranges[0].contains(&offsets[1]));
    }

    #[test]
    fn phase_variants_parse_the_real_enum() {
        let src =
            "pub enum Phase {\n    /// doc\n    Routed,\n    WavePrepare,\n    Recovery,\n}\n";
        let variants = phase_variants(&blank_noncode(src));
        assert_eq!(variants, vec!["Routed", "WavePrepare", "Recovery"]);
    }

    #[test]
    fn the_workspace_is_lint_clean() {
        assert!(run(), "the workspace must pass its own lint");
    }
}
