//! Defragmentation strategies and the communication-cost model of §5.3
//! (Equations 1–3).
//!
//! Periodically, the newest versions in the delta region are copied back
//! over their origin rows and the delta space is reclaimed. The copy can
//! be driven by the CPU (reads + writes over the memory bus) or by the
//! PIM units (bus-broadcast of metadata, then local copies at internal
//! bandwidth). Equation 3 gives the row-width crossover above which the
//! PIM strategy wins; the *hybrid* strategy picks per part.

use serde::{Deserialize, Serialize};

/// Who moves the data during defragmentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DefragStrategy {
    /// CPU reads metadata and copies rows over the memory bus.
    Cpu,
    /// CPU broadcasts metadata; PIM units copy locally.
    Pim,
    /// Per-part choice by Equation 3 (§7.4's best performer).
    Hybrid,
}

impl DefragStrategy {
    /// Display label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            DefragStrategy::Cpu => "Only CPU",
            DefragStrategy::Pim => "Only PIM",
            DefragStrategy::Hybrid => "Hybrid",
        }
    }
}

/// The §5.3 communication-cost model.
///
/// All bandwidths in bytes/second; `meta_bytes` is the per-row metadata
/// size `m` (16 B in the paper's example).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DefragCostModel {
    /// Per-row metadata bytes (`m`).
    pub meta_bytes: f64,
    /// CPU memory-bus bandwidth (`bdw_CPU`).
    pub cpu_bw: f64,
    /// Aggregate PIM-internal bandwidth (`bdw_PIM`).
    pub pim_bw: f64,
}

impl DefragCostModel {
    /// Builds the model.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive.
    pub fn new(meta_bytes: f64, cpu_bw: f64, pim_bw: f64) -> DefragCostModel {
        assert!(
            meta_bytes > 0.0 && cpu_bw > 0.0 && pim_bw > 0.0,
            "model parameters must be positive"
        );
        DefragCostModel {
            meta_bytes,
            cpu_bw,
            pim_bw,
        }
    }

    /// Equation 1: CPU-strategy communication time (seconds) for a delta
    /// region of `n` rows of which fraction `p` are newest versions, on a
    /// table part with `d` devices of row width `w` bytes.
    pub fn comm_cpu(&self, n: u64, p: f64, d: u32, w: u32) -> f64 {
        let (m, n) = (self.meta_bytes, n as f64);
        (m * n + 2.0 * n * p * d as f64 * w as f64) / self.cpu_bw
    }

    /// Equation 2: PIM-strategy communication time (seconds): CPU reads
    /// the metadata, broadcasts it to `d` devices, then PIM units read it
    /// and move the rows at internal bandwidth.
    pub fn comm_pim(&self, n: u64, p: f64, d: u32, w: u32) -> f64 {
        let (m, n, d) = (self.meta_bytes, n as f64, d as f64);
        (m * n + d * m * n) / self.cpu_bw + (d * m * n + 2.0 * n * p * d * w as f64) / self.pim_bw
    }

    /// Equation 3: the row width above which the PIM strategy beats the
    /// CPU strategy. Returns `None` when PIM bandwidth does not exceed CPU
    /// bandwidth (PIM never wins then).
    pub fn crossover_width(&self, p: f64) -> Option<f64> {
        if self.pim_bw <= self.cpu_bw {
            return None;
        }
        Some(
            (self.pim_bw + self.cpu_bw) / (2.0 * p * (self.pim_bw - self.cpu_bw)) * self.meta_bytes,
        )
    }

    /// The better of CPU/PIM for a part of width `w` (what Hybrid picks).
    pub fn pick(&self, p: f64, w: u32) -> DefragStrategy {
        match self.crossover_width(p) {
            Some(c) if (w as f64) > c => DefragStrategy::Pim,
            _ => DefragStrategy::Cpu,
        }
    }

    /// Communication time under `strategy` for one part.
    pub fn comm(&self, strategy: DefragStrategy, n: u64, p: f64, d: u32, w: u32) -> f64 {
        match strategy {
            DefragStrategy::Cpu => self.comm_cpu(n, p, d, w),
            DefragStrategy::Pim => self.comm_pim(n, p, d, w),
            DefragStrategy::Hybrid => self.comm(self.pick(p, w), n, p, d, w),
        }
    }

    /// Communication time for a whole *table* whose layout has several
    /// parts: the per-device row width is the sum of the part widths, the
    /// metadata is read (and, for the PIM strategy, broadcast) once, and
    /// the Hybrid strategy resolves per table — "the hybrid selects
    /// different strategies depending on the tables' row widths" (§7.4) —
    /// so it equals `min(comm_cpu, comm_pim)` by Equation 3.
    pub fn comm_parts(
        &self,
        strategy: DefragStrategy,
        n: u64,
        p: f64,
        d: u32,
        widths: &[u32],
    ) -> f64 {
        let w_total: u32 = widths.iter().sum();
        match strategy {
            DefragStrategy::Cpu => self.comm_cpu(n, p, d, w_total),
            DefragStrategy::Pim => self.comm_pim(n, p, d, w_total),
            DefragStrategy::Hybrid => {
                let s = self.pick(p, w_total);
                self.comm_parts(s, n, p, d, widths)
            }
        }
    }
}

/// Execution statistics of one defragmentation pass (drives the
/// Fig. 11(d) breakdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DefragStats {
    /// Rows whose newest version was copied back.
    pub rows_copied: u64,
    /// Delta slots reclaimed (chain length total).
    pub slots_reclaimed: u64,
    /// Version-chain hops traversed.
    pub chain_steps: u64,
    /// Bytes copied (data movement, all devices).
    pub bytes_copied: u64,
    /// Metadata bytes read/broadcast.
    pub meta_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §5.3's worked example: m = 16, p ≈ 1, bdw_PIM : bdw_CPU = 3 : 1 ⇒
    /// PIM wins when w > 16.
    #[test]
    fn paper_crossover_example() {
        let m = DefragCostModel::new(16.0, 1e9, 3e9);
        let c = m.crossover_width(1.0).unwrap();
        assert!((c - 16.0).abs() < 1e-9, "crossover {c}");
        assert_eq!(m.pick(1.0, 17), DefragStrategy::Pim);
        assert_eq!(m.pick(1.0, 16), DefragStrategy::Cpu);
        assert_eq!(m.pick(1.0, 2), DefragStrategy::Cpu);
    }

    /// The analytic crossover matches the point where the two cost curves
    /// actually cross.
    #[test]
    fn crossover_consistent_with_costs() {
        let m = DefragCostModel::new(16.0, 1e9, 3e9);
        let n = 10_000;
        let d = 8;
        for (w, pim_better) in [(8u32, false), (16, false), (17, true), (64, true)] {
            let cpu = m.comm_cpu(n, 1.0, d, w);
            let pim = m.comm_pim(n, 1.0, d, w);
            assert_eq!(pim < cpu, pim_better, "w={w}: cpu={cpu} pim={pim}");
        }
    }

    #[test]
    fn hybrid_is_never_worse() {
        let m = DefragCostModel::new(16.0, 1e9, 10e9);
        for w in [2u32, 4, 8, 16, 20, 32, 64, 152] {
            let h = m.comm(DefragStrategy::Hybrid, 5_000, 0.8, 8, w);
            let c = m.comm(DefragStrategy::Cpu, 5_000, 0.8, 8, w);
            let p = m.comm(DefragStrategy::Pim, 5_000, 0.8, 8, w);
            assert!(h <= c + 1e-12 && h <= p + 1e-12, "w={w}");
        }
    }

    #[test]
    fn no_crossover_when_pim_is_slower() {
        let m = DefragCostModel::new(16.0, 2e9, 1e9);
        assert_eq!(m.crossover_width(1.0), None);
        assert_eq!(m.pick(1.0, 10_000), DefragStrategy::Cpu);
    }

    #[test]
    fn costs_scale_linearly_in_rows() {
        let m = DefragCostModel::new(16.0, 1e9, 3e9);
        let a = m.comm_cpu(1000, 1.0, 8, 32);
        let b = m.comm_cpu(2000, 1.0, 8, 32);
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn labels() {
        assert_eq!(DefragStrategy::Hybrid.label(), "Hybrid");
        assert_eq!(DefragStrategy::Cpu.label(), "Only CPU");
        assert_eq!(DefragStrategy::Pim.label(), "Only PIM");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_model_panics() {
        let _ = DefragCostModel::new(0.0, 1.0, 1.0);
    }
}
