//! Multi-version concurrency control for PUSHtap (§5 of the paper).
//!
//! Single-instance HTAP needs MVCC so analytical queries read a consistent
//! snapshot while transactions keep committing. PUSHtap keeps version
//! *metadata* in CPU memory but version *data* in the delta region of the
//! unified format, rotation-aligned with the origin rows so PIM units can
//! copy versions back locally during defragmentation.
//!
//! * [`Ts`]/[`TsAllocator`]/[`TsOracle`] — transaction timestamps; the
//!   oracle is the shared (`Arc`) deployment-wide source a sharded
//!   topology uses so every engine commits under one global timestamp
//!   sequence (timestamps are encoded in stored bytes, so a shared
//!   sequence is what makes sharded state byte-identical to a
//!   single-instance reference);
//! * [`VersionChains`] — per-row version chains plus the commit log
//!   (Fig. 6(b));
//! * [`DeltaAllocator`] — rotation-arena slot allocation (§5.1), raising
//!   [`DeltaFull`] when an arena is exhausted;
//! * [`UndoLog`]/[`UndoRecord`] — the in-transaction undo log that makes
//!   the whole-transaction retry on [`DeltaFull`] *atomic*: partial
//!   effects (slot allocations, chain growth, row writes, index and
//!   insert-ring cursor movements) roll back before re-execution. A
//!   scope can also be parked *prepared* ([`UndoLog::prepare`], keyed
//!   by the transaction's pinned commit timestamp) — the participant
//!   half of the shard layer's simulated two-phase commit pins the
//!   records until the coordinator's commit/abort decision. **Several
//!   prepared scopes coexist per table** (a pipelined coordinator
//!   overlaps non-conflicting transactions' 2PCs) and resolve
//!   independently, out of preparation order; [`VersionChains`] tracks
//!   the corresponding prepared-but-uncommitted versions per scope
//!   ([`VersionChains::prepared_count`]) and supports undoing a
//!   scope's commit-log entries from the middle of the log;
//! * [`Snapshot`] — the per-device visibility bitmaps, updated
//!   incrementally from the log (§5.2, Fig. 6(c));
//! * [`DefragCostModel`] — Equations 1–3 and the CPU/PIM/Hybrid strategy
//!   choice (§5.3, Fig. 12(a)).
//!
//! # Examples
//!
//! ```
//! use pushtap_format::RowSlot;
//! use pushtap_mvcc::{Snapshot, Ts, TsAllocator, VersionChains};
//!
//! let mut ts = TsAllocator::new();
//! let mut chains = VersionChains::new();
//! let mut snap = Snapshot::new(16, 4, 8);
//!
//! // A transaction updates row 3 with a version in arena 0, slot 0.
//! let t = ts.allocate();
//! chains.record_update(3, RowSlot::Delta { rotation: 0, idx: 0 }, t);
//!
//! // Snapshotting folds the commit log into the bitmaps.
//! snap.update(chains.log(), t);
//! assert!(!snap.visible(RowSlot::Data { row: 3 }));
//! assert!(snap.visible(RowSlot::Delta { rotation: 0, idx: 0 }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chain;
mod defrag;
mod delta;
mod snapshot;
mod timestamp;
mod undo;

pub use chain::{GcFold, GcOutcome, LogEntry, VersionChains, VersionMeta};
pub use defrag::{DefragCostModel, DefragStats, DefragStrategy};
pub use delta::{DeltaAllocator, DeltaFull};
pub use snapshot::{Bitmap, Snapshot, SnapshotUpdate};
pub use timestamp::{SnapshotPin, Ts, TsAllocator, TsOracle};
pub use undo::{UndoLog, UndoRecord};
