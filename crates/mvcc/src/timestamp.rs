//! Transaction timestamps.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A transaction timestamp. `Ts(0)` is reserved for "the beginning of
/// time" (original data-load versions).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Ts(pub u64);

impl Ts {
    /// The load-time timestamp carried by original versions.
    pub const ZERO: Ts = Ts(0);
}

impl fmt::Display for Ts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Monotonic timestamp allocator (one per database instance).
#[derive(Debug, Clone, Default)]
pub struct TsAllocator {
    next: u64,
}

impl TsAllocator {
    /// Creates an allocator starting at `T1`.
    pub fn new() -> TsAllocator {
        TsAllocator { next: 1 }
    }

    /// Allocates the next timestamp.
    pub fn allocate(&mut self) -> Ts {
        let ts = Ts(self.next);
        self.next += 1;
        ts
    }

    /// The most recently allocated timestamp (`Ts::ZERO` if none).
    pub fn last(&self) -> Ts {
        Ts(self.next.saturating_sub(1))
    }

    /// Returns `ts` — which must be the most recently allocated
    /// timestamp — to the allocator, so the next [`TsAllocator::allocate`]
    /// hands it out again.
    ///
    /// Used by transaction abort: a transaction rolled back on
    /// [`DeltaFull`](crate::DeltaFull) re-executes under the *same*
    /// timestamp, keeping the committed timestamp sequence gapless and
    /// identical to a run that never hit delta pressure (timestamps leak
    /// into stored values, so gaps would break cross-deployment value
    /// identity).
    ///
    /// # Panics
    ///
    /// Panics unless `ts` is the most recent allocation.
    ///
    /// # Examples
    ///
    /// ```
    /// use pushtap_mvcc::TsAllocator;
    ///
    /// let mut a = TsAllocator::new();
    /// let t1 = a.allocate();
    /// a.rollback(t1); // the transaction aborted
    /// assert_eq!(a.allocate(), t1); // the retry reuses T1
    /// ```
    pub fn rollback(&mut self, ts: Ts) {
        assert!(
            ts.0 != 0 && ts.0 + 1 == self.next,
            "rollback of {ts} but last allocation was T{}",
            self.next.saturating_sub(1)
        );
        self.next -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_monotone() {
        let mut a = TsAllocator::new();
        let t1 = a.allocate();
        let t2 = a.allocate();
        assert!(t2 > t1);
        assert!(t1 > Ts::ZERO);
        assert_eq!(a.last(), t2);
    }

    #[test]
    fn fresh_allocator_has_no_last() {
        let a = TsAllocator::default();
        assert_eq!(a.last(), Ts::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(Ts(42).to_string(), "T42");
    }

    #[test]
    fn rollback_reuses_the_timestamp() {
        let mut a = TsAllocator::new();
        let t1 = a.allocate();
        let t2 = a.allocate();
        a.rollback(t2);
        assert_eq!(a.last(), t1);
        assert_eq!(a.allocate(), t2);
    }

    #[test]
    #[should_panic(expected = "rollback of T1")]
    fn rollback_of_stale_ts_panics() {
        let mut a = TsAllocator::new();
        let t1 = a.allocate();
        a.allocate();
        a.rollback(t1);
    }
}
