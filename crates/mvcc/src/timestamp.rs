//! Transaction timestamps.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use serde::{Deserialize, Serialize};

/// A transaction timestamp. `Ts(0)` is reserved for "the beginning of
/// time" (original data-load versions).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Ts(pub u64);

impl Ts {
    /// The load-time timestamp carried by original versions.
    pub const ZERO: Ts = Ts(0);
}

impl fmt::Display for Ts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A deployment-wide timestamp oracle: one monotonic source shared (via
/// `Arc`) by every engine of a multi-shard deployment.
///
/// Timestamps leak into stored bytes (commit timestamps are encoded
/// directly in the unified format's row and delta regions, §4–§5), so two
/// deployments that commit the same transaction stream hold byte-identical
/// state *only* if every transaction commits under the same timestamp in
/// both. A per-engine [`TsAllocator`] cannot provide that across shards;
/// the oracle can: the coordinator draws timestamps from it in global
/// stream order and pins each transaction to its draw (see
/// `pushtap-shard`), and its [`watermark`](TsOracle::watermark) is the
/// global snapshot cut analytical queries agree on.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use pushtap_mvcc::{Ts, TsOracle};
///
/// let oracle = Arc::new(TsOracle::new());
/// let t1 = oracle.allocate();
/// let t2 = oracle.allocate();
/// assert_eq!((t1, t2), (Ts(1), Ts(2)));
/// assert_eq!(oracle.watermark(), t2);
/// ```
#[derive(Debug)]
pub struct TsOracle {
    /// The next timestamp to hand out (starts at 1; `Ts(0)` is load time).
    next: AtomicU64,
    /// Registered snapshot pins: cut → number of live [`SnapshotPin`]
    /// guards at that cut. Garbage collection must keep every version a
    /// pinned reader could see, so the eligible cut
    /// ([`TsOracle::gc_eligible_before`]) stays strictly below the
    /// oldest pin.
    pins: Mutex<BTreeMap<u64, usize>>,
}

/// An RAII registration of an in-flight snapshot read at a fixed cut:
/// while the guard lives, [`TsOracle::gc_eligible_before`] stays below
/// the cut, so garbage collection cannot reclaim any version the reader
/// might visit. Dropping the guard unpins the cut.
///
/// Obtained from [`TsOracle::pin_snapshot`]; the guard holds its own
/// `Arc` to the oracle, so it can outlive the caller's borrow and move
/// across threads (a scattered query holds one pin per in-flight
/// shard-local scan).
#[derive(Debug)]
pub struct SnapshotPin {
    oracle: Arc<TsOracle>,
    cut: Ts,
}

impl SnapshotPin {
    /// The pinned cut.
    pub fn cut(&self) -> Ts {
        self.cut
    }
}

impl Drop for SnapshotPin {
    fn drop(&mut self) {
        let mut pins = self.oracle.pins_guard();
        match pins.get_mut(&self.cut.0) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                pins.remove(&self.cut.0);
            }
            None => unreachable!("unpin of an unregistered cut {}", self.cut),
        }
    }
}

impl Default for TsOracle {
    fn default() -> TsOracle {
        TsOracle::new()
    }
}

impl TsOracle {
    /// Creates an oracle whose first allocation is `T1`.
    pub fn new() -> TsOracle {
        TsOracle {
            next: AtomicU64::new(1),
            pins: Mutex::new(BTreeMap::new()),
        }
    }

    /// The pin registry, recovering from a poisoned lock (the registry
    /// is a plain multiset — a panicking holder cannot leave it torn).
    fn pins_guard(&self) -> MutexGuard<'_, BTreeMap<u64, usize>> {
        self.pins.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Registers a snapshot read at `cut` and returns the guard keeping
    /// it registered. While any guard at `cut` lives,
    /// [`TsOracle::gc_eligible_before`] stays strictly below `cut`.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    /// use pushtap_mvcc::{Ts, TsOracle};
    ///
    /// let oracle = Arc::new(TsOracle::new());
    /// for _ in 0..10 {
    ///     oracle.allocate();
    /// }
    /// let pin = oracle.pin_snapshot(Ts(4));
    /// assert_eq!(oracle.gc_eligible_before(), Ts(3));
    /// drop(pin);
    /// assert_eq!(oracle.gc_eligible_before(), Ts(10));
    /// ```
    pub fn pin_snapshot(self: &Arc<Self>, cut: Ts) -> SnapshotPin {
        *self.pins_guard().entry(cut.0).or_insert(0) += 1;
        SnapshotPin {
            oracle: Arc::clone(self),
            cut,
        }
    }

    /// Number of live snapshot pins.
    pub fn active_pins(&self) -> usize {
        self.pins_guard().values().sum()
    }

    /// The oldest registered pin, if any.
    pub fn oldest_pin(&self) -> Option<Ts> {
        self.pins_guard().keys().next().map(|&c| Ts(c))
    }

    /// The garbage-collection cut: versions with `write_ts` at or below
    /// it may be reclaimed. This is the watermark floored by the active
    /// pins — strictly below the oldest pin, so a pinned reader's whole
    /// visible range (every version with `write_ts ≤ cut`) survives GC
    /// intact.
    pub fn gc_eligible_before(&self) -> Ts {
        let wm = self.watermark();
        match self.oldest_pin() {
            Some(pin) => Ts(wm.0.min(pin.0.saturating_sub(1))),
            None => wm,
        }
    }

    /// Allocates the next timestamp (atomic; safe from any thread).
    pub fn allocate(&self) -> Ts {
        Ts(self.next.fetch_add(1, Ordering::SeqCst))
    }

    /// The highest timestamp handed out so far (`Ts::ZERO` if none) —
    /// the global snapshot cut: every timestamp `<= watermark()` has been
    /// assigned to some transaction.
    pub fn watermark(&self) -> Ts {
        Ts(self.next.load(Ordering::SeqCst).saturating_sub(1))
    }

    /// Returns `ts` — which must still be the most recent allocation — to
    /// the oracle, so the next [`TsOracle::allocate`] hands it out again.
    /// The single-engine retry path uses this to keep the committed
    /// timestamp sequence gapless (see [`TsAllocator::rollback`]).
    ///
    /// # Panics
    ///
    /// Panics unless `ts` is the most recent allocation (a concurrent
    /// allocator may have moved past it; pinned execution never rolls the
    /// oracle back — a pinned retry simply reuses its timestamp).
    pub fn rollback(&self, ts: Ts) {
        // Validate before mutating: a failed compare_exchange must not
        // have touched the shared counter (Ts(0) is the reserved
        // load-time timestamp — "returning" it would rewind the oracle
        // to re-issue already-allocated timestamps).
        assert!(ts.0 != 0, "rollback of the reserved {ts}");
        let r = self
            .next
            .compare_exchange(ts.0 + 1, ts.0, Ordering::SeqCst, Ordering::SeqCst);
        assert!(
            r.is_ok(),
            "rollback of {ts} but the oracle has moved to T{}",
            self.next.load(Ordering::SeqCst).saturating_sub(1)
        );
    }

    /// Raises the watermark to at least `ts` (no-op if already past it).
    /// Used when an engine commits a *pinned* timestamp that was drawn
    /// from another source, keeping `watermark()` an upper bound of every
    /// committed timestamp.
    pub fn advance_to(&self, ts: Ts) {
        self.next.fetch_max(ts.0 + 1, Ordering::SeqCst);
    }
}

/// Which source a [`TsAllocator`] draws from.
#[derive(Debug, Clone)]
enum TsSource {
    /// A private per-engine counter (the single-instance default).
    Local { next: u64 },
    /// A shared deployment-wide [`TsOracle`].
    Shared(Arc<TsOracle>),
}

/// Monotonic timestamp allocator (one per database instance).
///
/// By default each instance owns a private counter; a sharded deployment
/// swaps it for a shared [`TsOracle`] with [`TsAllocator::shared`], which
/// preserves the whole API (allocate / last / rollback) while making
/// every engine draw from one global sequence.
#[derive(Debug, Clone)]
pub struct TsAllocator {
    source: TsSource,
}

impl Default for TsAllocator {
    fn default() -> TsAllocator {
        TsAllocator::new()
    }
}

impl TsAllocator {
    /// Creates an allocator starting at `T1` with a private counter.
    pub fn new() -> TsAllocator {
        TsAllocator {
            source: TsSource::Local { next: 1 },
        }
    }

    /// Creates an allocator that delegates to a shared [`TsOracle`].
    pub fn shared(oracle: Arc<TsOracle>) -> TsAllocator {
        TsAllocator {
            source: TsSource::Shared(oracle),
        }
    }

    /// Whether this allocator draws from a shared [`TsOracle`].
    pub fn is_shared(&self) -> bool {
        matches!(self.source, TsSource::Shared(_))
    }

    /// The shared oracle, if any.
    pub fn oracle(&self) -> Option<&Arc<TsOracle>> {
        match &self.source {
            TsSource::Local { .. } => None,
            TsSource::Shared(o) => Some(o),
        }
    }

    /// Allocates the next timestamp.
    pub fn allocate(&mut self) -> Ts {
        match &mut self.source {
            TsSource::Local { next } => {
                let ts = Ts(*next);
                *next += 1;
                ts
            }
            TsSource::Shared(oracle) => oracle.allocate(),
        }
    }

    /// The most recently allocated timestamp (`Ts::ZERO` if none). With a
    /// shared source this is the deployment-wide watermark — every
    /// timestamp at or below it has been handed out *somewhere*.
    pub fn last(&self) -> Ts {
        match &self.source {
            TsSource::Local { next } => Ts(next.saturating_sub(1)),
            TsSource::Shared(oracle) => oracle.watermark(),
        }
    }

    /// Returns `ts` — which must be the most recently allocated
    /// timestamp — to the allocator, so the next [`TsAllocator::allocate`]
    /// hands it out again.
    ///
    /// Used by transaction abort: a transaction rolled back on
    /// [`DeltaFull`](crate::DeltaFull) re-executes under the *same*
    /// timestamp, keeping the committed timestamp sequence gapless and
    /// identical to a run that never hit delta pressure (timestamps leak
    /// into stored values, so gaps would break cross-deployment value
    /// identity).
    ///
    /// # Panics
    ///
    /// Panics unless `ts` is the most recent allocation.
    ///
    /// # Examples
    ///
    /// ```
    /// use pushtap_mvcc::TsAllocator;
    ///
    /// let mut a = TsAllocator::new();
    /// let t1 = a.allocate();
    /// a.rollback(t1); // the transaction aborted
    /// assert_eq!(a.allocate(), t1); // the retry reuses T1
    /// ```
    pub fn rollback(&mut self, ts: Ts) {
        match &mut self.source {
            TsSource::Local { next } => {
                assert!(
                    ts.0 != 0 && ts.0 + 1 == *next,
                    "rollback of {ts} but last allocation was T{}",
                    next.saturating_sub(1)
                );
                *next -= 1;
            }
            TsSource::Shared(oracle) => oracle.rollback(ts),
        }
    }

    /// Raises [`TsAllocator::last`] to at least `ts` without handing out
    /// the intermediate timestamps. Used when the engine commits a
    /// *pinned* timestamp assigned by an external coordinator (see
    /// `TpccDb::execute_at` in `pushtap-oltp`), so the engine's watermark
    /// keeps bounding every timestamp it has committed.
    pub fn advance_to(&mut self, ts: Ts) {
        match &mut self.source {
            TsSource::Local { next } => *next = (*next).max(ts.0 + 1),
            TsSource::Shared(oracle) => oracle.advance_to(ts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_monotone() {
        let mut a = TsAllocator::new();
        let t1 = a.allocate();
        let t2 = a.allocate();
        assert!(t2 > t1);
        assert!(t1 > Ts::ZERO);
        assert_eq!(a.last(), t2);
    }

    #[test]
    fn fresh_allocator_has_no_last() {
        let a = TsAllocator::default();
        assert_eq!(a.last(), Ts::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(Ts(42).to_string(), "T42");
    }

    #[test]
    fn rollback_reuses_the_timestamp() {
        let mut a = TsAllocator::new();
        let t1 = a.allocate();
        let t2 = a.allocate();
        a.rollback(t2);
        assert_eq!(a.last(), t1);
        assert_eq!(a.allocate(), t2);
    }

    #[test]
    #[should_panic(expected = "rollback of T1")]
    fn rollback_of_stale_ts_panics() {
        let mut a = TsAllocator::new();
        let t1 = a.allocate();
        a.allocate();
        a.rollback(t1);
    }

    #[test]
    fn advance_to_raises_local_watermark() {
        let mut a = TsAllocator::new();
        a.advance_to(Ts(7));
        assert_eq!(a.last(), Ts(7));
        assert_eq!(a.allocate(), Ts(8));
        // Never moves backwards.
        a.advance_to(Ts(3));
        assert_eq!(a.last(), Ts(8));
    }

    #[test]
    fn shared_allocators_draw_one_sequence() {
        let oracle = Arc::new(TsOracle::new());
        let mut a = TsAllocator::shared(oracle.clone());
        let mut b = TsAllocator::shared(oracle.clone());
        assert!(a.is_shared() && b.is_shared());
        assert_eq!(a.allocate(), Ts(1));
        assert_eq!(b.allocate(), Ts(2));
        assert_eq!(a.allocate(), Ts(3));
        // Both see the same global watermark.
        assert_eq!(a.last(), Ts(3));
        assert_eq!(b.last(), Ts(3));
        assert_eq!(oracle.watermark(), Ts(3));
    }

    #[test]
    fn shared_rollback_keeps_sequence_gapless() {
        let oracle = Arc::new(TsOracle::new());
        let mut a = TsAllocator::shared(oracle);
        let t1 = a.allocate();
        a.rollback(t1);
        assert_eq!(a.allocate(), t1);
    }

    #[test]
    #[should_panic(expected = "rollback of the reserved T0")]
    fn oracle_rollback_of_zero_panics_without_corrupting() {
        let oracle = TsOracle::new();
        // Must panic *before* the CAS: a fresh oracle has next == 1, so
        // an unchecked compare_exchange(1, 0) would "succeed" and rewind
        // the shared sequence to re-issue Ts(0).
        oracle.rollback(Ts::ZERO);
    }

    #[test]
    #[should_panic(expected = "the oracle has moved")]
    fn shared_rollback_of_stale_ts_panics() {
        let oracle = Arc::new(TsOracle::new());
        let t1 = oracle.allocate();
        oracle.allocate();
        oracle.rollback(t1);
    }

    #[test]
    fn gc_cut_is_the_watermark_without_pins() {
        let oracle = Arc::new(TsOracle::new());
        assert_eq!(oracle.gc_eligible_before(), Ts::ZERO);
        for _ in 0..5 {
            oracle.allocate();
        }
        assert_eq!(oracle.gc_eligible_before(), Ts(5));
        assert_eq!(oracle.active_pins(), 0);
        assert_eq!(oracle.oldest_pin(), None);
    }

    #[test]
    fn pins_floor_the_gc_cut_strictly_below_the_oldest() {
        let oracle = Arc::new(TsOracle::new());
        for _ in 0..10 {
            oracle.allocate();
        }
        let old = oracle.pin_snapshot(Ts(4));
        let new = oracle.pin_snapshot(Ts(9));
        assert_eq!(oracle.active_pins(), 2);
        assert_eq!(oracle.oldest_pin(), Some(Ts(4)));
        assert_eq!(oracle.gc_eligible_before(), Ts(3));
        drop(old);
        assert_eq!(oracle.gc_eligible_before(), Ts(8));
        drop(new);
        assert_eq!(oracle.gc_eligible_before(), Ts(10));
    }

    #[test]
    fn duplicate_pins_at_one_cut_unpin_independently() {
        let oracle = Arc::new(TsOracle::new());
        for _ in 0..5 {
            oracle.allocate();
        }
        let a = oracle.pin_snapshot(Ts(2));
        let b = oracle.pin_snapshot(Ts(2));
        assert_eq!((a.cut(), b.cut()), (Ts(2), Ts(2)));
        assert_eq!(oracle.active_pins(), 2);
        drop(a);
        assert_eq!(oracle.gc_eligible_before(), Ts(1), "second pin still holds");
        drop(b);
        assert_eq!(oracle.gc_eligible_before(), Ts(5));
    }

    #[test]
    fn pin_at_the_dawn_of_time_disables_gc() {
        let oracle = Arc::new(TsOracle::new());
        oracle.allocate();
        let _pin = oracle.pin_snapshot(Ts::ZERO);
        assert_eq!(oracle.gc_eligible_before(), Ts::ZERO);
    }

    #[test]
    fn oracle_allocation_is_thread_safe_and_gapless() {
        let oracle = Arc::new(TsOracle::new());
        let mut seen: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let o = Arc::clone(&oracle);
                    scope.spawn(move || (0..100).map(|_| o.allocate().0).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("thread"))
                .collect()
        });
        seen.sort_unstable();
        assert_eq!(seen, (1..=400).collect::<Vec<_>>());
        assert_eq!(oracle.watermark(), Ts(400));
    }
}
