//! The in-transaction undo log (transaction-atomic delta allocation).
//!
//! A transaction executes as a sequence of statements, each of which may
//! allocate delta slots, write row versions, extend version chains, and
//! advance insert-ring cursors. When a statement hits [`DeltaFull`], the
//! engine defragments and re-executes the *whole* transaction — so the
//! partial effects of the earlier statements must first be rolled back,
//! or the retry would re-apply them at fresh stripe slots and the
//! functional state would depend on *when* the arenas filled up (the
//! divergence the sharded identity proof cannot tolerate).
//!
//! [`UndoLog`] records every mutation of a table's transactional state
//! while a transaction scope is active; applying the records in reverse
//! restores the table byte-for-byte. The log is purely CPU-side
//! metadata, like the version chains (§5.1): rollback costs no simulated
//! memory traffic.
//!
//! # Prepared scopes (two-phase commit)
//!
//! The active scope can be *parked* in the prepared state
//! ([`UndoLog::prepare`]): the participant half of a simulated two-phase
//! commit applies an effect set, then pins the scope's records — keyed by
//! the transaction's pinned commit timestamp — while the coordinator
//! collects votes. **Several prepared scopes may coexist** (a pipelined
//! coordinator overlaps the two-phase commits of non-conflicting
//! transactions, so one engine can hold many undecided write sets at
//! once); each resolves independently through
//! [`UndoLog::commit_prepared`] (keep everything) or
//! [`UndoLog::abort_prepared`] (hand that scope's pinned records back for
//! reverse replay). Coexisting scopes must touch disjoint rows — the
//! conflict scheduler guarantees it — or out-of-order rollback could not
//! be byte-exact.
//!
//! [`DeltaFull`]: crate::DeltaFull
//!
//! # Examples
//!
//! ```
//! use pushtap_format::RowSlot;
//! use pushtap_mvcc::{Ts, UndoLog, UndoRecord};
//!
//! let mut undo = UndoLog::new();
//! undo.begin();
//! undo.record(UndoRecord::SlotAlloc { rotation: 0, idx: 7 });
//! undo.record(UndoRecord::VersionLink { row: 3 });
//!
//! // Abort: records come back newest-first, ready to apply in reverse.
//! let records = undo.abort();
//! assert!(matches!(records[0], UndoRecord::VersionLink { row: 3 }));
//! assert!(matches!(records[1], UndoRecord::SlotAlloc { rotation: 0, idx: 7 }));
//! assert!(!undo.is_active());
//!
//! // Two transactions prepare and resolve independently (out of order).
//! undo.begin();
//! undo.record(UndoRecord::VersionLink { row: 1 });
//! undo.prepare(Ts(10));
//! undo.begin();
//! undo.record(UndoRecord::VersionLink { row: 2 });
//! undo.prepare(Ts(11));
//! assert_eq!(undo.prepared_scopes(), 2);
//! assert_eq!(undo.abort_prepared(Ts(10)).len(), 1);
//! assert_eq!(undo.commit_prepared(Ts(11)), 1);
//! assert_eq!(undo.prepared_scopes(), 0);
//! ```

use std::collections::BTreeMap;

use pushtap_format::RowSlot;

use crate::timestamp::Ts;

/// One reversible effect of an in-flight transaction.
///
/// The record stores the *pre-state* needed to reverse the effect; the
/// owning table interprets it during rollback (the log itself does not
/// hold references into the table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UndoRecord {
    /// A delta slot was allocated in `rotation`'s arena.
    /// Reverse: release the slot back to the arena's free list.
    SlotAlloc {
        /// The rotation arena the slot came from.
        rotation: u32,
        /// The allocated slot index.
        idx: u64,
    },
    /// A version was appended to `row`'s chain (and the commit log).
    /// Reverse: [`VersionChains::undo_update`](crate::VersionChains::undo_update).
    VersionLink {
        /// The data-region row whose chain grew.
        row: u64,
    },
    /// Row bytes were written at `slot`. Reverse: restore `pre_image`.
    ///
    /// Versions are written to freshly allocated slots, so the pre-image
    /// is usually stale garbage — restoring it anyway makes rollback
    /// byte-exact, which is what the delta-pressure identity tests
    /// assert.
    RowWrite {
        /// The written slot.
        slot: RowSlot,
        /// Column values the slot held before the write.
        pre_image: Vec<Vec<u8>>,
    },
    /// `key` was inserted into (or moved within) the hash index.
    /// Reverse: restore `prev` (remove the key if it was absent).
    IndexInsert {
        /// The inserted key.
        key: u64,
        /// The row the key previously mapped to, if any.
        prev: Option<u64>,
    },
    /// An insert-ring cursor advanced. Reverse: restore `prev`.
    RingAdvance {
        /// The cursor value before the advance.
        prev: u64,
    },
}

/// The undo log of one table: records mutations while a transaction
/// scope is active, hands them back newest-first on abort, and holds any
/// number of *prepared* scopes (pinned records keyed by the
/// transaction's commit timestamp) awaiting their coordinator decisions.
///
/// Inactive by default — tables driven outside a transaction scope (data
/// loading, single-statement callers) record nothing and pay nothing.
#[derive(Debug, Clone, Default)]
pub struct UndoLog {
    records: Vec<UndoRecord>,
    active: bool,
    prepared: BTreeMap<Ts, Vec<UndoRecord>>,
}

impl UndoLog {
    /// Creates an inactive, empty log.
    pub fn new() -> UndoLog {
        UndoLog::default()
    }

    /// Opens a transaction scope. Recording starts; any records from a
    /// previous *active* scope must have been consumed. Prepared scopes
    /// may coexist — they belong to other transactions whose coordinator
    /// decisions are still pending.
    ///
    /// # Panics
    ///
    /// Panics if an active scope is already open (nested transactions
    /// are not modeled).
    pub fn begin(&mut self) {
        assert!(!self.active, "nested transaction scope");
        debug_assert!(
            self.records.is_empty(),
            "records leaked from previous scope"
        );
        self.active = true;
    }

    /// Whether an active (recording) scope is open. Prepared scopes do
    /// not count: they accept no further records.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Number of prepared scopes awaiting their coordinator decisions.
    pub fn prepared_scopes(&self) -> usize {
        self.prepared.len()
    }

    /// Whether a scope prepared at `ts` is pending.
    pub fn is_prepared(&self, ts: Ts) -> bool {
        self.prepared.contains_key(&ts)
    }

    /// Parks the active scope in the prepared state under the
    /// transaction's pinned commit timestamp `ts`: the records so far are
    /// pinned for the coordinator's decision and the log is free to open
    /// the next transaction's scope.
    ///
    /// # Panics
    ///
    /// Panics unless a scope is active, or if a scope is already
    /// prepared at `ts` (timestamps are unique per transaction).
    pub fn prepare(&mut self, ts: Ts) {
        assert!(self.active, "prepare outside an active scope");
        let records = std::mem::take(&mut self.records);
        self.active = false;
        let clash = self.prepared.insert(ts, records);
        assert!(clash.is_none(), "a scope is already prepared at {ts:?}");
    }

    /// Number of records in the active scope.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// The records of the active scope, oldest first. Used by the
    /// prepare step to find the versions the scope wrote (so they can be
    /// marked prepared on the version chains) without closing the scope.
    pub fn records(&self) -> &[UndoRecord] {
        &self.records
    }

    /// Whether the active scope has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends a record if an active scope is open; drops it otherwise.
    ///
    /// # Panics
    ///
    /// Panics if prepared scopes exist but no active scope is open:
    /// every prepared write set must stay fixed until its coordinator
    /// decides, so an unrecorded mutation alongside pending scopes is a
    /// protocol violation.
    pub fn record(&mut self, rec: UndoRecord) {
        if self.active {
            self.records.push(rec);
        } else {
            assert!(
                self.prepared.is_empty(),
                "unrecorded mutation while prepared scopes are pending"
            );
        }
    }

    /// Closes the active scope keeping all effects. Returns the number
    /// of records discarded.
    pub fn commit(&mut self) -> usize {
        self.active = false;
        let n = self.records.len();
        self.records.clear();
        n
    }

    /// Closes the active scope for rollback: returns the records
    /// newest-first (the order they must be applied in) and deactivates
    /// the log.
    pub fn abort(&mut self) -> Vec<UndoRecord> {
        self.active = false;
        let mut records = std::mem::take(&mut self.records);
        records.reverse();
        records
    }

    /// The coordinator's commit decision for the scope prepared at `ts`:
    /// its pinned records are discarded (the effects stay). Returns the
    /// number of records discarded.
    ///
    /// # Panics
    ///
    /// Panics if no scope is prepared at `ts`.
    pub fn commit_prepared(&mut self, ts: Ts) -> usize {
        self.prepared
            .remove(&ts)
            .unwrap_or_else(|| panic!("commit decision for unprepared {ts:?}"))
            .len()
    }

    /// The coordinator's abort decision for the scope prepared at `ts`:
    /// returns that scope's records newest-first for reverse replay.
    ///
    /// # Panics
    ///
    /// Panics if no scope is prepared at `ts`.
    pub fn abort_prepared(&mut self, ts: Ts) -> Vec<UndoRecord> {
        let mut records = self
            .prepared
            .remove(&ts)
            .unwrap_or_else(|| panic!("abort decision for unprepared {ts:?}"));
        records.reverse();
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_log_records_nothing() {
        let mut u = UndoLog::new();
        u.record(UndoRecord::VersionLink { row: 1 });
        assert!(u.is_empty());
        assert!(!u.is_active());
    }

    #[test]
    fn active_log_records_and_commit_clears() {
        let mut u = UndoLog::new();
        u.begin();
        assert!(u.is_active());
        u.record(UndoRecord::SlotAlloc {
            rotation: 1,
            idx: 2,
        });
        u.record(UndoRecord::RingAdvance { prev: 9 });
        assert_eq!(u.len(), 2);
        assert_eq!(u.commit(), 2);
        assert!(u.is_empty());
        assert!(!u.is_active());
    }

    #[test]
    fn abort_returns_newest_first() {
        let mut u = UndoLog::new();
        u.begin();
        u.record(UndoRecord::VersionLink { row: 1 });
        u.record(UndoRecord::VersionLink { row: 2 });
        let r = u.abort();
        assert_eq!(
            r,
            vec![
                UndoRecord::VersionLink { row: 2 },
                UndoRecord::VersionLink { row: 1 }
            ]
        );
        assert!(!u.is_active());
        // The log is reusable for the next scope.
        u.begin();
        assert!(u.is_empty());
    }

    #[test]
    #[should_panic(expected = "nested transaction scope")]
    fn nested_begin_panics() {
        let mut u = UndoLog::new();
        u.begin();
        u.begin();
    }

    #[test]
    fn prepared_scope_pins_records_until_the_decision() {
        let mut u = UndoLog::new();
        u.begin();
        u.record(UndoRecord::VersionLink { row: 4 });
        u.prepare(Ts(1));
        assert!(!u.is_active());
        assert!(u.is_prepared(Ts(1)));
        assert_eq!(u.prepared_scopes(), 1);
        // Commit decision: records discarded, scope closed.
        assert_eq!(u.commit_prepared(Ts(1)), 1);
        assert_eq!(u.prepared_scopes(), 0);

        // Abort decision: records come back newest-first.
        u.begin();
        u.record(UndoRecord::VersionLink { row: 1 });
        u.record(UndoRecord::VersionLink { row: 2 });
        u.prepare(Ts(2));
        let r = u.abort_prepared(Ts(2));
        assert_eq!(r.len(), 2);
        assert!(matches!(r[0], UndoRecord::VersionLink { row: 2 }));
        assert_eq!(u.prepared_scopes(), 0);
    }

    /// The pipelined-coordinator shape: several scopes prepared on one
    /// table, resolved independently and out of preparation order.
    #[test]
    fn coexisting_prepared_scopes_resolve_independently() {
        let mut u = UndoLog::new();
        for (ts, row) in [(10u64, 1u64), (11, 2), (12, 3)] {
            u.begin();
            u.record(UndoRecord::VersionLink { row });
            u.prepare(Ts(ts));
        }
        assert_eq!(u.prepared_scopes(), 3);
        // The middle scope aborts first; the others commit after.
        let r = u.abort_prepared(Ts(11));
        assert_eq!(r, vec![UndoRecord::VersionLink { row: 2 }]);
        assert_eq!(u.commit_prepared(Ts(12)), 1);
        assert_eq!(u.commit_prepared(Ts(10)), 1);
        assert_eq!(u.prepared_scopes(), 0);
    }

    #[test]
    #[should_panic(expected = "unrecorded mutation while prepared scopes are pending")]
    fn recording_outside_a_scope_with_pending_prepares_panics() {
        let mut u = UndoLog::new();
        u.begin();
        u.prepare(Ts(1));
        u.record(UndoRecord::VersionLink { row: 1 });
    }

    #[test]
    #[should_panic(expected = "prepare outside an active scope")]
    fn prepare_without_scope_panics() {
        let mut u = UndoLog::new();
        u.prepare(Ts(1));
    }

    #[test]
    #[should_panic(expected = "already prepared at")]
    fn duplicate_prepare_timestamp_panics() {
        let mut u = UndoLog::new();
        u.begin();
        u.prepare(Ts(1));
        u.begin();
        u.prepare(Ts(1));
    }

    #[test]
    #[should_panic(expected = "commit decision for unprepared")]
    fn commit_of_unprepared_scope_panics() {
        let mut u = UndoLog::new();
        u.commit_prepared(Ts(3));
    }
}
