//! The in-transaction undo log (transaction-atomic delta allocation).
//!
//! A transaction executes as a sequence of statements, each of which may
//! allocate delta slots, write row versions, extend version chains, and
//! advance insert-ring cursors. When a statement hits [`DeltaFull`], the
//! engine defragments and re-executes the *whole* transaction — so the
//! partial effects of the earlier statements must first be rolled back,
//! or the retry would re-apply them at fresh stripe slots and the
//! functional state would depend on *when* the arenas filled up (the
//! divergence the sharded identity proof cannot tolerate).
//!
//! [`UndoLog`] records every mutation of a table's transactional state
//! while a transaction scope is active; applying the records in reverse
//! restores the table byte-for-byte. The log is purely CPU-side
//! metadata, like the version chains (§5.1): rollback costs no simulated
//! memory traffic.
//!
//! # The prepared state (two-phase commit)
//!
//! A scope can additionally be *prepared* ([`UndoLog::prepare`]): the
//! participant half of a simulated two-phase commit applies a forwarded
//! effect set, then parks the scope with its undo records pinned while
//! the coordinator collects votes. A prepared scope accepts no further
//! records; the coordinator's decision resolves it through the ordinary
//! [`UndoLog::commit`] (keep everything) or [`UndoLog::abort`] (hand the
//! pinned records back for reverse replay).
//!
//! [`DeltaFull`]: crate::DeltaFull
//!
//! # Examples
//!
//! ```
//! use pushtap_format::RowSlot;
//! use pushtap_mvcc::{UndoLog, UndoRecord};
//!
//! let mut undo = UndoLog::new();
//! undo.begin();
//! undo.record(UndoRecord::SlotAlloc { rotation: 0, idx: 7 });
//! undo.record(UndoRecord::VersionLink { row: 3 });
//!
//! // Abort: records come back newest-first, ready to apply in reverse.
//! let records = undo.abort();
//! assert!(matches!(records[0], UndoRecord::VersionLink { row: 3 }));
//! assert!(matches!(records[1], UndoRecord::SlotAlloc { rotation: 0, idx: 7 }));
//! assert!(!undo.is_active());
//! ```

use pushtap_format::RowSlot;

/// One reversible effect of an in-flight transaction.
///
/// The record stores the *pre-state* needed to reverse the effect; the
/// owning table interprets it during rollback (the log itself does not
/// hold references into the table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UndoRecord {
    /// A delta slot was allocated in `rotation`'s arena.
    /// Reverse: release the slot back to the arena's free list.
    SlotAlloc {
        /// The rotation arena the slot came from.
        rotation: u32,
        /// The allocated slot index.
        idx: u64,
    },
    /// A version was appended to `row`'s chain (and the commit log).
    /// Reverse: [`VersionChains::undo_update`](crate::VersionChains::undo_update).
    VersionLink {
        /// The data-region row whose chain grew.
        row: u64,
    },
    /// Row bytes were written at `slot`. Reverse: restore `pre_image`.
    ///
    /// Versions are written to freshly allocated slots, so the pre-image
    /// is usually stale garbage — restoring it anyway makes rollback
    /// byte-exact, which is what the delta-pressure identity tests
    /// assert.
    RowWrite {
        /// The written slot.
        slot: RowSlot,
        /// Column values the slot held before the write.
        pre_image: Vec<Vec<u8>>,
    },
    /// `key` was inserted into (or moved within) the hash index.
    /// Reverse: restore `prev` (remove the key if it was absent).
    IndexInsert {
        /// The inserted key.
        key: u64,
        /// The row the key previously mapped to, if any.
        prev: Option<u64>,
    },
    /// An insert-ring cursor advanced. Reverse: restore `prev`.
    RingAdvance {
        /// The cursor value before the advance.
        prev: u64,
    },
}

/// The lifecycle of one transaction scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum ScopeState {
    /// No scope open: mutations are unrecorded.
    #[default]
    Inactive,
    /// A scope is open and recording.
    Active,
    /// The scope is prepared: records are pinned awaiting the
    /// coordinator's commit/abort decision; no further records accepted.
    Prepared,
}

/// The undo log of one table: records mutations while a transaction
/// scope is active, hands them back newest-first on abort.
///
/// Inactive by default — tables driven outside a transaction scope (data
/// loading, single-statement callers) record nothing and pay nothing.
#[derive(Debug, Clone, Default)]
pub struct UndoLog {
    records: Vec<UndoRecord>,
    state: ScopeState,
}

impl UndoLog {
    /// Creates an inactive, empty log.
    pub fn new() -> UndoLog {
        UndoLog::default()
    }

    /// Opens a transaction scope. Recording starts; any records from a
    /// previous scope must have been consumed.
    ///
    /// # Panics
    ///
    /// Panics if a scope is already open (nested transactions are not
    /// modeled), including a prepared one awaiting its decision.
    pub fn begin(&mut self) {
        assert!(
            self.state == ScopeState::Inactive,
            "nested transaction scope"
        );
        debug_assert!(
            self.records.is_empty(),
            "records leaked from previous scope"
        );
        self.state = ScopeState::Active;
    }

    /// Whether a transaction scope is open (active or prepared).
    pub fn is_active(&self) -> bool {
        self.state != ScopeState::Inactive
    }

    /// Whether the scope is prepared (pinned, awaiting the coordinator's
    /// decision).
    pub fn is_prepared(&self) -> bool {
        self.state == ScopeState::Prepared
    }

    /// Parks the open scope in the prepared state: the records so far are
    /// pinned for the coordinator's decision, and any further
    /// [`UndoLog::record`] is a protocol violation.
    ///
    /// # Panics
    ///
    /// Panics unless a scope is active (and not already prepared).
    pub fn prepare(&mut self) {
        assert!(
            self.state == ScopeState::Active,
            "prepare outside an active scope"
        );
        self.state = ScopeState::Prepared;
    }

    /// Number of records in the current scope.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// The records of the current scope, oldest first. Used by the
    /// prepare step to find the versions the scope wrote (so they can be
    /// marked prepared on the version chains) without closing the scope.
    pub fn records(&self) -> &[UndoRecord] {
        &self.records
    }

    /// Whether the current scope has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends a record if a scope is active; drops it otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the scope is prepared: a prepared participant holds its
    /// write set fixed until the coordinator decides.
    pub fn record(&mut self, rec: UndoRecord) {
        match self.state {
            ScopeState::Inactive => {}
            ScopeState::Active => self.records.push(rec),
            ScopeState::Prepared => panic!("mutation recorded in a prepared scope"),
        }
    }

    /// Closes the scope keeping all effects. Returns the number of
    /// records discarded.
    pub fn commit(&mut self) -> usize {
        self.state = ScopeState::Inactive;
        let n = self.records.len();
        self.records.clear();
        n
    }

    /// Closes the scope for rollback: returns the records newest-first
    /// (the order they must be applied in) and deactivates the log.
    pub fn abort(&mut self) -> Vec<UndoRecord> {
        self.state = ScopeState::Inactive;
        let mut records = std::mem::take(&mut self.records);
        records.reverse();
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_log_records_nothing() {
        let mut u = UndoLog::new();
        u.record(UndoRecord::VersionLink { row: 1 });
        assert!(u.is_empty());
        assert!(!u.is_active());
    }

    #[test]
    fn active_log_records_and_commit_clears() {
        let mut u = UndoLog::new();
        u.begin();
        assert!(u.is_active());
        u.record(UndoRecord::SlotAlloc {
            rotation: 1,
            idx: 2,
        });
        u.record(UndoRecord::RingAdvance { prev: 9 });
        assert_eq!(u.len(), 2);
        assert_eq!(u.commit(), 2);
        assert!(u.is_empty());
        assert!(!u.is_active());
    }

    #[test]
    fn abort_returns_newest_first() {
        let mut u = UndoLog::new();
        u.begin();
        u.record(UndoRecord::VersionLink { row: 1 });
        u.record(UndoRecord::VersionLink { row: 2 });
        let r = u.abort();
        assert_eq!(
            r,
            vec![
                UndoRecord::VersionLink { row: 2 },
                UndoRecord::VersionLink { row: 1 }
            ]
        );
        assert!(!u.is_active());
        // The log is reusable for the next scope.
        u.begin();
        assert!(u.is_empty());
    }

    #[test]
    #[should_panic(expected = "nested transaction scope")]
    fn nested_begin_panics() {
        let mut u = UndoLog::new();
        u.begin();
        u.begin();
    }

    #[test]
    fn prepared_scope_pins_records_until_the_decision() {
        let mut u = UndoLog::new();
        u.begin();
        u.record(UndoRecord::VersionLink { row: 4 });
        u.prepare();
        assert!(u.is_active() && u.is_prepared());
        assert_eq!(u.len(), 1);
        // Commit decision: records discarded, scope closed.
        assert_eq!(u.commit(), 1);
        assert!(!u.is_active() && !u.is_prepared());

        // Abort decision: records come back newest-first.
        u.begin();
        u.record(UndoRecord::VersionLink { row: 1 });
        u.record(UndoRecord::VersionLink { row: 2 });
        u.prepare();
        let r = u.abort();
        assert_eq!(r.len(), 2);
        assert!(matches!(r[0], UndoRecord::VersionLink { row: 2 }));
        assert!(!u.is_prepared());
    }

    #[test]
    #[should_panic(expected = "mutation recorded in a prepared scope")]
    fn recording_into_a_prepared_scope_panics() {
        let mut u = UndoLog::new();
        u.begin();
        u.prepare();
        u.record(UndoRecord::VersionLink { row: 1 });
    }

    #[test]
    #[should_panic(expected = "prepare outside an active scope")]
    fn prepare_without_scope_panics() {
        let mut u = UndoLog::new();
        u.prepare();
    }

    #[test]
    #[should_panic(expected = "nested transaction scope")]
    fn begin_over_prepared_scope_panics() {
        let mut u = UndoLog::new();
        u.begin();
        u.prepare();
        u.begin();
    }
}
