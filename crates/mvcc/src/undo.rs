//! The in-transaction undo log (transaction-atomic delta allocation).
//!
//! A transaction executes as a sequence of statements, each of which may
//! allocate delta slots, write row versions, extend version chains, and
//! advance insert-ring cursors. When a statement hits [`DeltaFull`], the
//! engine defragments and re-executes the *whole* transaction — so the
//! partial effects of the earlier statements must first be rolled back,
//! or the retry would re-apply them at fresh stripe slots and the
//! functional state would depend on *when* the arenas filled up (the
//! divergence the sharded identity proof cannot tolerate).
//!
//! [`UndoLog`] records every mutation of a table's transactional state
//! while a transaction scope is active; applying the records in reverse
//! restores the table byte-for-byte. The log is purely CPU-side
//! metadata, like the version chains (§5.1): rollback costs no simulated
//! memory traffic.
//!
//! [`DeltaFull`]: crate::DeltaFull
//!
//! # Examples
//!
//! ```
//! use pushtap_format::RowSlot;
//! use pushtap_mvcc::{UndoLog, UndoRecord};
//!
//! let mut undo = UndoLog::new();
//! undo.begin();
//! undo.record(UndoRecord::SlotAlloc { rotation: 0, idx: 7 });
//! undo.record(UndoRecord::VersionLink { row: 3 });
//!
//! // Abort: records come back newest-first, ready to apply in reverse.
//! let records = undo.abort();
//! assert!(matches!(records[0], UndoRecord::VersionLink { row: 3 }));
//! assert!(matches!(records[1], UndoRecord::SlotAlloc { rotation: 0, idx: 7 }));
//! assert!(!undo.is_active());
//! ```

use pushtap_format::RowSlot;

/// One reversible effect of an in-flight transaction.
///
/// The record stores the *pre-state* needed to reverse the effect; the
/// owning table interprets it during rollback (the log itself does not
/// hold references into the table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UndoRecord {
    /// A delta slot was allocated in `rotation`'s arena.
    /// Reverse: release the slot back to the arena's free list.
    SlotAlloc {
        /// The rotation arena the slot came from.
        rotation: u32,
        /// The allocated slot index.
        idx: u64,
    },
    /// A version was appended to `row`'s chain (and the commit log).
    /// Reverse: [`VersionChains::undo_update`](crate::VersionChains::undo_update).
    VersionLink {
        /// The data-region row whose chain grew.
        row: u64,
    },
    /// Row bytes were written at `slot`. Reverse: restore `pre_image`.
    ///
    /// Versions are written to freshly allocated slots, so the pre-image
    /// is usually stale garbage — restoring it anyway makes rollback
    /// byte-exact, which is what the delta-pressure identity tests
    /// assert.
    RowWrite {
        /// The written slot.
        slot: RowSlot,
        /// Column values the slot held before the write.
        pre_image: Vec<Vec<u8>>,
    },
    /// `key` was inserted into (or moved within) the hash index.
    /// Reverse: restore `prev` (remove the key if it was absent).
    IndexInsert {
        /// The inserted key.
        key: u64,
        /// The row the key previously mapped to, if any.
        prev: Option<u64>,
    },
    /// An insert-ring cursor advanced. Reverse: restore `prev`.
    RingAdvance {
        /// The cursor value before the advance.
        prev: u64,
    },
}

/// The undo log of one table: records mutations while a transaction
/// scope is active, hands them back newest-first on abort.
///
/// Inactive by default — tables driven outside a transaction scope (data
/// loading, single-statement callers) record nothing and pay nothing.
#[derive(Debug, Clone, Default)]
pub struct UndoLog {
    records: Vec<UndoRecord>,
    active: bool,
}

impl UndoLog {
    /// Creates an inactive, empty log.
    pub fn new() -> UndoLog {
        UndoLog::default()
    }

    /// Opens a transaction scope. Recording starts; any records from a
    /// previous scope must have been consumed.
    ///
    /// # Panics
    ///
    /// Panics if a scope is already active (nested transactions are not
    /// modeled).
    pub fn begin(&mut self) {
        assert!(!self.active, "nested transaction scope");
        debug_assert!(
            self.records.is_empty(),
            "records leaked from previous scope"
        );
        self.active = true;
    }

    /// Whether a transaction scope is active.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Number of records in the current scope.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the current scope has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends a record if a scope is active; drops it otherwise.
    pub fn record(&mut self, rec: UndoRecord) {
        if self.active {
            self.records.push(rec);
        }
    }

    /// Closes the scope keeping all effects. Returns the number of
    /// records discarded.
    pub fn commit(&mut self) -> usize {
        self.active = false;
        let n = self.records.len();
        self.records.clear();
        n
    }

    /// Closes the scope for rollback: returns the records newest-first
    /// (the order they must be applied in) and deactivates the log.
    pub fn abort(&mut self) -> Vec<UndoRecord> {
        self.active = false;
        let mut records = std::mem::take(&mut self.records);
        records.reverse();
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_log_records_nothing() {
        let mut u = UndoLog::new();
        u.record(UndoRecord::VersionLink { row: 1 });
        assert!(u.is_empty());
        assert!(!u.is_active());
    }

    #[test]
    fn active_log_records_and_commit_clears() {
        let mut u = UndoLog::new();
        u.begin();
        assert!(u.is_active());
        u.record(UndoRecord::SlotAlloc {
            rotation: 1,
            idx: 2,
        });
        u.record(UndoRecord::RingAdvance { prev: 9 });
        assert_eq!(u.len(), 2);
        assert_eq!(u.commit(), 2);
        assert!(u.is_empty());
        assert!(!u.is_active());
    }

    #[test]
    fn abort_returns_newest_first() {
        let mut u = UndoLog::new();
        u.begin();
        u.record(UndoRecord::VersionLink { row: 1 });
        u.record(UndoRecord::VersionLink { row: 2 });
        let r = u.abort();
        assert_eq!(
            r,
            vec![
                UndoRecord::VersionLink { row: 2 },
                UndoRecord::VersionLink { row: 1 }
            ]
        );
        assert!(!u.is_active());
        // The log is reusable for the next scope.
        u.begin();
        assert!(u.is_empty());
    }

    #[test]
    #[should_panic(expected = "nested transaction scope")]
    fn nested_begin_panics() {
        let mut u = UndoLog::new();
        u.begin();
        u.begin();
    }
}
