//! Version chains and the commit log (§2.3, §5.1, Fig. 6(b)).
//!
//! Every row version carries a write timestamp, a read timestamp, and a
//! pointer to the previous version. Metadata lives in CPU memory ("as
//! metadata is not required by PIM units", §5.1); the versions' *data*
//! lives in the delta region of the unified format.

use std::collections::{HashMap, HashSet};

use pushtap_format::RowSlot;

use crate::timestamp::Ts;

/// One row folded by a [`VersionChains::gc`] pass: the newest committed
/// version at or below the cut moves back into the data region, and the
/// whole tail of the chain below it is released.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcFold {
    /// The data-region row.
    pub row: u64,
    /// The version copied back into the data region (the newest with
    /// `write_ts ≤ cut`). The caller must perform the copy *before*
    /// recycling the freed slots.
    pub fold_slot: RowSlot,
    /// The folded version's commit timestamp — the newest timestamp this
    /// fold releases (every other freed version is older). The sanitizer
    /// checks it against the registered pins.
    pub fold_ts: Ts,
    /// Every delta slot this fold releases: `fold_slot` itself plus all
    /// older versions it supersedes, newest first.
    pub freed: Vec<RowSlot>,
}

/// The outcome of one [`VersionChains::gc`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcOutcome {
    /// Rows folded, in ascending row order (deterministic across runs).
    pub folds: Vec<GcFold>,
    /// Original log indices of the trimmed entries, ascending. The
    /// caller forwards these to `Snapshot::note_log_trimmed` so the
    /// incremental cursor keeps pointing at the same surviving entry.
    pub log_trimmed: Vec<usize>,
    /// Chain hops walked while planning the pass (charged like the
    /// defragmentation traverse component).
    pub traverse_steps: u32,
}

impl GcOutcome {
    /// Total delta slots released by this pass.
    pub fn slots_recycled(&self) -> usize {
        self.folds.iter().map(|f| f.freed.len()).sum()
    }

    /// Whether the pass reclaimed nothing.
    pub fn is_empty(&self) -> bool {
        self.folds.is_empty() && self.log_trimmed.is_empty()
    }
}

/// Metadata of one row version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionMeta {
    /// Timestamp of the transaction that created this version.
    pub write_ts: Ts,
    /// Timestamp of the most recent reader.
    pub read_ts: Ts,
    /// The previous version (None for original versions).
    pub prev: Option<RowSlot>,
}

/// One committed update, in commit-timestamp order. Consumed by
/// snapshotting to update the visibility bitmaps (§5.2, Fig. 6(c)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogEntry {
    /// Commit timestamp.
    pub ts: Ts,
    /// The updated data-region row.
    pub row: u64,
    /// Where the new version lives.
    pub new_slot: RowSlot,
    /// The version it supersedes.
    pub prev_slot: RowSlot,
}

/// The version chains of one table.
#[derive(Debug, Clone, Default)]
pub struct VersionChains {
    newest: HashMap<u64, RowSlot>,
    meta: HashMap<RowSlot, VersionMeta>,
    log: Vec<LogEntry>,
    traverse_steps: u64,
    /// Versions written by prepared-but-uncommitted two-phase-commit
    /// scopes, keyed by the scope's pinned commit timestamp. They sit on
    /// the chains (the scope's writes are applied in place) but the
    /// coordinator has not yet decided their fate: the scope's commit
    /// decision clears its marks, its abort decision removes its
    /// versions via [`VersionChains::undo_update`]. Several scopes may
    /// be pending at once (a pipelined coordinator overlaps the
    /// two-phase commits of non-conflicting transactions).
    prepared: HashMap<RowSlot, Ts>,
}

impl VersionChains {
    /// Creates empty chains.
    pub fn new() -> VersionChains {
        VersionChains::default()
    }

    /// Records a committed update of `row`, whose new version was written
    /// to `new_slot` at timestamp `ts`. Returns the superseded slot.
    ///
    /// The commit log stays sorted by timestamp: the entry is inserted
    /// *before* any later-timestamped entries already present. An
    /// in-order stream appends (the common case, O(1)); a transaction
    /// retried after a wave of later non-conflicting transactions
    /// committed (the pipelined coordinator's abort/retry path) slots
    /// its entries back into timestamp position, which snapshotting
    /// relies on ([`Snapshot::update`](crate::Snapshot::update) folds
    /// the log in order and stops at the first entry past its cut).
    ///
    /// # Panics
    ///
    /// Panics if `ts` is not newer than the row's current version (commits
    /// are timestamp-ordered per row under MVCC write locking).
    pub fn record_update(&mut self, row: u64, new_slot: RowSlot, ts: Ts) -> RowSlot {
        let prev = self.newest_slot(row);
        if let Some(m) = self.meta.get(&prev) {
            assert!(m.write_ts < ts, "non-monotone commit at row {row}");
        }
        self.meta.insert(
            new_slot,
            VersionMeta {
                write_ts: ts,
                read_ts: ts,
                prev: Some(prev),
            },
        );
        self.newest.insert(row, new_slot);
        let entry = LogEntry {
            ts,
            row,
            new_slot,
            prev_slot: prev,
        };
        // Sorted insert, scanning from the tail (entries with equal
        // timestamps — one transaction's statements — keep apply order).
        let mut at = self.log.len();
        while at > 0 && self.log[at - 1].ts > ts {
            at -= 1;
        }
        self.log.insert(at, entry);
        prev
    }

    /// The newest version slot of `row` (its origin slot if never updated).
    pub fn newest_slot(&self, row: u64) -> RowSlot {
        self.newest
            .get(&row)
            .copied()
            .unwrap_or(RowSlot::Data { row })
    }

    /// Whether `row` has any delta versions.
    pub fn has_versions(&self, row: u64) -> bool {
        self.newest.contains_key(&row)
    }

    /// The version of `row` visible at `ts`, and the number of chain hops
    /// traversed to find it. Original versions (write_ts 0) are visible to
    /// everyone.
    pub fn visible_at(&mut self, row: u64, ts: Ts) -> (RowSlot, u32) {
        let mut slot = self.newest_slot(row);
        let mut steps = 0u32;
        loop {
            match self.meta.get(&slot) {
                Some(m) if m.write_ts > ts => {
                    steps += 1;
                    self.traverse_steps += 1;
                    slot = m.prev.expect("chain must terminate at an origin version");
                }
                _ => return (slot, steps),
            }
        }
    }

    /// Updates the read timestamp of the version at `slot`.
    pub fn mark_read(&mut self, slot: RowSlot, ts: Ts) {
        if let Some(m) = self.meta.get_mut(&slot) {
            m.read_ts = m.read_ts.max(ts);
        }
    }

    /// Metadata of a version, if it has any (origin versions without
    /// updates have implicit `write_ts = 0`).
    pub fn meta(&self, slot: RowSlot) -> Option<&VersionMeta> {
        self.meta.get(&slot)
    }

    /// Rows that currently have delta versions.
    pub fn updated_rows(&self) -> impl Iterator<Item = u64> + '_ {
        self.newest.keys().copied()
    }

    /// Number of rows with delta versions.
    pub fn updated_row_count(&self) -> usize {
        self.newest.len()
    }

    /// The committed-update log, in timestamp order.
    pub fn log(&self) -> &[LogEntry] {
        &self.log
    }

    /// Marks the newest version of `row` as prepared-but-uncommitted:
    /// written by the two-phase-commit scope pinned at `ts`, whose
    /// coordinator decision is still pending. Called when a participant
    /// parks its scope after applying an effect set.
    pub fn mark_prepared(&mut self, row: u64, ts: Ts) {
        let slot = self.newest_slot(row);
        debug_assert!(
            matches!(slot, RowSlot::Delta { .. }),
            "prepared mark on an origin version of row {row}"
        );
        self.prepared.insert(slot, ts);
    }

    /// Resolves the prepared marks of the scope pinned at `ts` as
    /// committed (its coordinator's commit decision arrived); marks of
    /// other pending scopes stay. Returns the number of versions
    /// promoted.
    pub fn commit_prepared(&mut self, ts: Ts) -> usize {
        let before = self.prepared.len();
        self.prepared.retain(|_, scope| *scope != ts);
        before - self.prepared.len()
    }

    /// Number of prepared-but-uncommitted versions currently sitting on
    /// the chains. Zero whenever no two-phase commit is in flight — the
    /// invariant the participant-abort tests assert, and a precondition
    /// for snapshotting (a snapshot must never publish an undecided
    /// version).
    pub fn prepared_count(&self) -> usize {
        self.prepared.len()
    }

    /// Reverses the most recent [`VersionChains::record_update`] of
    /// `row` — the chain half of transaction rollback. Removes the
    /// newest version of `row` from the chain, the metadata map, and the
    /// commit log, and returns the removed slot (so the caller can
    /// release it back to the delta allocator).
    ///
    /// The entry need not be the log tail: a pipelined coordinator can
    /// abort a prepared scope *after* later non-conflicting transactions
    /// appended their own entries, so the scope's entries are found by
    /// scanning back from the tail. The undone version must still be the
    /// row's newest (no later transaction wrote the row — the conflict
    /// scheduler orders same-row writers), and no snapshot may have
    /// consumed the entry yet — queries only run once every scope is
    /// resolved.
    ///
    /// Undo must run in reverse commit order within the aborting
    /// transaction.
    ///
    /// # Panics
    ///
    /// Panics if the log holds no entry for `row`, or if the entry is
    /// not the row's newest version (a later writer slipped in — a
    /// conflict-scheduling bug).
    ///
    /// # Examples
    ///
    /// ```
    /// use pushtap_format::RowSlot;
    /// use pushtap_mvcc::{Ts, VersionChains};
    ///
    /// let mut chains = VersionChains::new();
    /// let slot = RowSlot::Delta { rotation: 0, idx: 0 };
    /// chains.record_update(3, slot, Ts(1));
    /// assert_eq!(chains.undo_update(3), slot);
    /// // The row is back to its origin version, the log is empty.
    /// assert_eq!(chains.newest_slot(3), RowSlot::Data { row: 3 });
    /// assert!(chains.log().is_empty());
    /// ```
    pub fn undo_update(&mut self, row: u64) -> RowSlot {
        let at = self
            .log
            .iter()
            .rposition(|e| e.row == row)
            .expect("undo_update for a row with no log entry");
        let e = self.log.remove(at);
        assert_eq!(
            self.newest.get(&row),
            Some(&e.new_slot),
            "undo_update of a superseded version at row {row}"
        );
        let m = self
            .meta
            .remove(&e.new_slot)
            .expect("undone version must have metadata");
        debug_assert_eq!(m.prev, Some(e.prev_slot), "chain/log disagree");
        self.prepared.remove(&e.new_slot);
        match e.prev_slot {
            // The row had an older delta version: restore it as newest.
            RowSlot::Delta { .. } => {
                self.newest.insert(row, e.prev_slot);
            }
            // The undone version superseded the origin: the row has no
            // delta versions any more.
            RowSlot::Data { .. } => {
                self.newest.remove(&row);
            }
        }
        e.new_slot
    }

    /// Walks `row`'s chain collecting every delta slot (newest first), and
    /// the hop count — the traverse component of defragmentation
    /// (Fig. 11(d)).
    pub fn chain_slots(&self, row: u64) -> (Vec<RowSlot>, u32) {
        let mut out = Vec::new();
        let mut steps = 0;
        let mut slot = self.newest_slot(row);
        while let RowSlot::Delta { .. } = slot {
            out.push(slot);
            steps += 1;
            slot = self
                .meta
                .get(&slot)
                .and_then(|m| m.prev)
                .expect("delta version must have a predecessor");
        }
        (out, steps)
    }

    /// Clears all chains and the log after defragmentation moved every
    /// newest version back to the data region. Returns the number of
    /// versions discarded.
    ///
    /// # Panics
    ///
    /// Panics if any version is still prepared-but-uncommitted:
    /// defragmenting would fold an undecided write into the data region.
    pub fn clear_after_defrag(&mut self) -> usize {
        assert!(
            self.prepared.is_empty(),
            "defragmentation with {} prepared-but-uncommitted versions",
            self.prepared.len()
        );
        let versions = self.meta.len();
        self.newest.clear();
        self.meta.clear();
        self.log.clear();
        versions
    }

    /// Total chain hops ever traversed (for the Fig. 11(c) breakdown).
    pub fn traverse_steps(&self) -> u64 {
        self.traverse_steps
    }

    /// Incremental garbage collection below the cut `before` (inclusive):
    /// for every row whose chain holds a committed version with
    /// `write_ts ≤ before`, the newest such version becomes the row's
    /// data-region content (the caller copies its bytes back using the
    /// returned [`GcFold`]s) and it plus every older version is released;
    /// the surviving chain is re-anchored on the data region, and the
    /// trimmed versions' commit-log entries are removed.
    ///
    /// Unlike [`VersionChains::clear_after_defrag`] this touches only
    /// the reclaimable tail of each chain — versions above the cut,
    /// rows whose chain carries a prepared-but-uncommitted version, and
    /// log entries above the cut are left exactly as they were, so the
    /// pass needs no stop-the-world barrier: concurrent readers at or
    /// above the cut see the same bytes before and after.
    ///
    /// The caller chooses `before` from the oracle
    /// (`TsOracle::gc_eligible_before`), which keeps it strictly below
    /// every registered snapshot pin.
    pub fn gc(&mut self, before: Ts) -> GcOutcome {
        let mut out = GcOutcome::default();
        if before == Ts::ZERO {
            return out;
        }
        let mut rows: Vec<u64> = self.newest.keys().copied().collect();
        rows.sort_unstable();
        let mut freed_slots: HashSet<RowSlot> = HashSet::new();
        let mut reanchor: HashMap<RowSlot, u64> = HashMap::new();
        for row in rows {
            let (chain, steps) = self.chain_slots(row);
            out.traverse_steps += steps;
            // A prepared-but-uncommitted version pins its whole row: the
            // scope may still abort, which restores an older version.
            if chain.iter().any(|s| self.prepared.contains_key(s)) {
                continue;
            }
            let Some(fold_at) = chain.iter().position(|s| {
                self.meta
                    .get(s)
                    .expect("chain slot must have metadata")
                    .write_ts
                    <= before
            }) else {
                continue;
            };
            let fold_slot = chain[fold_at];
            let fold_ts = self
                .meta
                .get(&fold_slot)
                .expect("fold slot must have metadata")
                .write_ts;
            let freed: Vec<RowSlot> = chain[fold_at..].to_vec();
            for &s in &freed {
                self.meta.remove(&s);
                freed_slots.insert(s);
            }
            if fold_at == 0 {
                // The whole chain folded: the row is chainless again.
                self.newest.remove(&row);
            } else {
                // Re-anchor the oldest survivor on the data region, which
                // now holds the folded version's bytes.
                let survivor = chain[fold_at - 1];
                self.meta
                    .get_mut(&survivor)
                    .expect("surviving version must have metadata")
                    .prev = Some(RowSlot::Data { row });
                reanchor.insert(fold_slot, row);
            }
            out.folds.push(GcFold {
                row,
                fold_slot,
                fold_ts,
                freed,
            });
        }
        if out.folds.is_empty() {
            return out;
        }
        // Trim the freed versions' log entries (all at or below the cut,
        // so a snapshot whose cursor has passed them simply rewinds) and
        // re-anchor surviving entries whose superseded slot was folded.
        let mut kept = Vec::with_capacity(self.log.len());
        for (i, mut e) in self.log.drain(..).enumerate() {
            if freed_slots.contains(&e.new_slot) {
                debug_assert!(e.ts <= before, "trimmed a log entry above the cut");
                out.log_trimmed.push(i);
                continue;
            }
            if let Some(&row) = reanchor.get(&e.prev_slot) {
                if e.row == row {
                    e.prev_slot = RowSlot::Data { row };
                }
            }
            kept.push(e);
        }
        self.log = kept;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(rotation: u32, idx: u64) -> RowSlot {
        RowSlot::Delta { rotation, idx }
    }

    #[test]
    fn chain_grows_newest_first() {
        let mut c = VersionChains::new();
        assert_eq!(c.newest_slot(5), RowSlot::Data { row: 5 });
        let p0 = c.record_update(5, delta(0, 0), Ts(1));
        assert_eq!(p0, RowSlot::Data { row: 5 });
        let p1 = c.record_update(5, delta(0, 1), Ts(3));
        assert_eq!(p1, delta(0, 0));
        assert_eq!(c.newest_slot(5), delta(0, 1));
        assert!(c.has_versions(5));
        assert_eq!(c.updated_row_count(), 1);
    }

    /// The Fig. 6(b) scenario: T1 and T3 update the same row; a snapshot
    /// at T=T2 must see T1's version, at T=T4 T3's version, and at T=T0
    /// the origin.
    #[test]
    fn visibility_walks_the_chain() {
        let mut c = VersionChains::new();
        c.record_update(7, delta(1, 0), Ts(1)); // T1
        c.record_update(7, delta(1, 1), Ts(3)); // T3
        assert_eq!(c.visible_at(7, Ts(4)), (delta(1, 1), 0));
        assert_eq!(c.visible_at(7, Ts(2)), (delta(1, 0), 1));
        assert_eq!(c.visible_at(7, Ts(0)), (RowSlot::Data { row: 7 }, 2));
        assert_eq!(c.traverse_steps(), 3);
    }

    #[test]
    fn log_preserves_commit_order() {
        let mut c = VersionChains::new();
        c.record_update(1, delta(0, 0), Ts(1));
        c.record_update(2, delta(0, 1), Ts(2));
        c.record_update(1, delta(0, 2), Ts(4));
        let ts: Vec<u64> = c.log().iter().map(|e| e.ts.0).collect();
        assert_eq!(ts, vec![1, 2, 4]);
        assert_eq!(c.log()[2].prev_slot, delta(0, 0));
    }

    #[test]
    fn chain_slots_lists_all_versions() {
        let mut c = VersionChains::new();
        c.record_update(9, delta(2, 0), Ts(1));
        c.record_update(9, delta(2, 5), Ts(2));
        let (slots, steps) = c.chain_slots(9);
        assert_eq!(slots, vec![delta(2, 5), delta(2, 0)]);
        assert_eq!(steps, 2);
        // A row with no versions has an empty chain.
        assert_eq!(c.chain_slots(1).0.len(), 0);
    }

    #[test]
    fn clear_after_defrag_resets() {
        let mut c = VersionChains::new();
        c.record_update(1, delta(0, 0), Ts(1));
        c.record_update(2, delta(1, 0), Ts(2));
        assert_eq!(c.clear_after_defrag(), 2);
        assert_eq!(c.updated_row_count(), 0);
        assert!(c.log().is_empty());
        assert_eq!(c.newest_slot(1), RowSlot::Data { row: 1 });
    }

    #[test]
    fn read_ts_advances() {
        let mut c = VersionChains::new();
        c.record_update(1, delta(0, 0), Ts(2));
        c.mark_read(delta(0, 0), Ts(9));
        assert_eq!(c.meta(delta(0, 0)).unwrap().read_ts, Ts(9));
        // mark_read never regresses.
        c.mark_read(delta(0, 0), Ts(3));
        assert_eq!(c.meta(delta(0, 0)).unwrap().read_ts, Ts(9));
    }

    #[test]
    fn undo_update_restores_previous_newest() {
        let mut c = VersionChains::new();
        c.record_update(5, delta(0, 0), Ts(1));
        c.record_update(5, delta(0, 1), Ts(2));
        assert_eq!(c.undo_update(5), delta(0, 1));
        assert_eq!(c.newest_slot(5), delta(0, 0));
        assert_eq!(c.log().len(), 1);
        assert_eq!(c.undo_update(5), delta(0, 0));
        assert_eq!(c.newest_slot(5), RowSlot::Data { row: 5 });
        assert!(!c.has_versions(5));
        assert!(c.log().is_empty());
        // The row is fully reusable: a later commit starts a new chain.
        c.record_update(5, delta(0, 0), Ts(1));
        assert_eq!(c.visible_at(5, Ts(1)), (delta(0, 0), 0));
    }

    /// The pipelined abort path: a scope's entries can be undone from
    /// the *middle* of the log after later non-conflicting transactions
    /// appended theirs — the log closes up and stays sorted.
    #[test]
    fn undo_removes_mid_log_entries() {
        let mut c = VersionChains::new();
        c.record_update(1, delta(0, 0), Ts(1));
        c.record_update(2, delta(0, 1), Ts(2));
        c.record_update(3, delta(0, 2), Ts(3));
        assert_eq!(c.undo_update(2), delta(0, 1));
        let ts: Vec<u64> = c.log().iter().map(|e| e.ts.0).collect();
        assert_eq!(ts, vec![1, 3]);
        assert_eq!(c.newest_slot(2), RowSlot::Data { row: 2 });
        // The other rows' chains are untouched.
        assert_eq!(c.newest_slot(1), delta(0, 0));
        assert_eq!(c.newest_slot(3), delta(0, 2));
    }

    /// A retried transaction (pinned at an old timestamp) committing
    /// after later non-conflicting transactions keeps the log sorted —
    /// the invariant incremental snapshotting folds by.
    #[test]
    fn late_commit_at_an_earlier_timestamp_keeps_the_log_sorted() {
        let mut c = VersionChains::new();
        c.record_update(5, delta(0, 0), Ts(11));
        c.record_update(6, delta(0, 1), Ts(12));
        c.record_update(4, delta(0, 2), Ts(10)); // the retried transaction
        let ts: Vec<u64> = c.log().iter().map(|e| e.ts.0).collect();
        assert_eq!(ts, vec![10, 11, 12]);
    }

    #[test]
    #[should_panic(expected = "no log entry")]
    fn undo_of_unlogged_row_panics() {
        let mut c = VersionChains::new();
        c.record_update(1, delta(0, 0), Ts(1));
        c.undo_update(2);
    }

    #[test]
    #[should_panic(expected = "non-monotone commit")]
    fn non_monotone_commit_panics() {
        let mut c = VersionChains::new();
        c.record_update(1, delta(0, 0), Ts(5));
        c.record_update(1, delta(0, 1), Ts(5));
    }

    #[test]
    fn prepared_marks_resolve_on_commit_and_abort() {
        let mut c = VersionChains::new();
        c.record_update(3, delta(0, 0), Ts(1));
        c.mark_prepared(3, Ts(1));
        c.record_update(7, delta(0, 1), Ts(1));
        c.mark_prepared(7, Ts(1));
        assert_eq!(c.prepared_count(), 2);
        // Abort decision: undoing the write clears its mark.
        assert_eq!(c.undo_update(7), delta(0, 1));
        assert_eq!(c.prepared_count(), 1);
        // Commit decision: the surviving mark is promoted.
        assert_eq!(c.commit_prepared(Ts(1)), 1);
        assert_eq!(c.prepared_count(), 0);
    }

    /// Coexisting prepared scopes (the pipelined coordinator): each
    /// scope's commit decision promotes only its own marks.
    #[test]
    fn prepared_marks_are_scoped_by_timestamp() {
        let mut c = VersionChains::new();
        c.record_update(1, delta(0, 0), Ts(5));
        c.mark_prepared(1, Ts(5));
        c.record_update(2, delta(0, 1), Ts(6));
        c.mark_prepared(2, Ts(6));
        assert_eq!(c.prepared_count(), 2);
        assert_eq!(c.commit_prepared(Ts(6)), 1);
        assert_eq!(c.prepared_count(), 1, "the other scope's mark survives");
        assert_eq!(c.commit_prepared(Ts(5)), 1);
        assert_eq!(c.prepared_count(), 0);
    }

    #[test]
    #[should_panic(expected = "prepared-but-uncommitted")]
    fn defrag_with_prepared_versions_panics() {
        let mut c = VersionChains::new();
        c.record_update(3, delta(0, 0), Ts(1));
        c.mark_prepared(3, Ts(1));
        c.clear_after_defrag();
    }

    #[test]
    fn gc_below_everything_is_a_no_op() {
        let mut c = VersionChains::new();
        c.record_update(1, delta(0, 0), Ts(5));
        let out = c.gc(Ts(4));
        assert!(out.is_empty());
        assert_eq!(out.slots_recycled(), 0);
        assert_eq!(c.newest_slot(1), delta(0, 0));
        assert_eq!(c.log().len(), 1);
        // The reserved cut is always a no-op.
        assert!(c.gc(Ts::ZERO).is_empty());
    }

    #[test]
    fn gc_folds_the_whole_chain_when_everything_is_below_the_cut() {
        let mut c = VersionChains::new();
        c.record_update(5, delta(0, 0), Ts(1));
        c.record_update(5, delta(0, 1), Ts(3));
        let out = c.gc(Ts(4));
        assert_eq!(out.folds.len(), 1);
        let f = &out.folds[0];
        assert_eq!((f.row, f.fold_slot), (5, delta(0, 1)));
        assert_eq!(f.freed, vec![delta(0, 1), delta(0, 0)]);
        assert_eq!(out.log_trimmed, vec![0, 1]);
        assert_eq!(out.slots_recycled(), 2);
        // The row is chainless: reads fall through to the data region,
        // which the caller filled with the folded version's bytes.
        assert!(!c.has_versions(5));
        assert_eq!(c.visible_at(5, Ts(4)), (RowSlot::Data { row: 5 }, 0));
        assert!(c.log().is_empty());
        // The chain is fully reusable afterwards.
        c.record_update(5, delta(0, 0), Ts(9));
        assert_eq!(c.visible_at(5, Ts(9)), (delta(0, 0), 0));
    }

    #[test]
    fn gc_truncates_below_the_fold_point_and_reanchors_survivors() {
        let mut c = VersionChains::new();
        c.record_update(7, delta(0, 0), Ts(1));
        c.record_update(7, delta(0, 1), Ts(3));
        c.record_update(7, delta(0, 2), Ts(6));
        c.record_update(8, delta(0, 3), Ts(2));
        let out = c.gc(Ts(4));
        // Row 7 folds at T3 (its newest ≤ cut), freeing T3 and T1; the
        // T6 survivor re-anchors on the data region. Row 8 folds whole.
        assert_eq!(out.folds.len(), 2);
        assert_eq!(out.folds[0].fold_slot, delta(0, 1));
        assert_eq!(out.folds[0].freed, vec![delta(0, 1), delta(0, 0)]);
        assert_eq!(out.folds[1].fold_slot, delta(0, 3));
        assert_eq!(out.log_trimmed, vec![0, 1, 2]);
        assert_eq!(c.newest_slot(7), delta(0, 2));
        assert_eq!(
            c.meta(delta(0, 2)).unwrap().prev,
            Some(RowSlot::Data { row: 7 })
        );
        // Chain walks below the fold land on the data region.
        assert_eq!(c.visible_at(7, Ts(4)), (RowSlot::Data { row: 7 }, 1));
        assert_eq!(c.visible_at(7, Ts(6)), (delta(0, 2), 0));
        // The surviving log entry re-anchored too.
        assert_eq!(c.log().len(), 1);
        assert_eq!(c.log()[0].ts, Ts(6));
        assert_eq!(c.log()[0].prev_slot, RowSlot::Data { row: 7 });
    }

    #[test]
    fn gc_refuses_rows_with_prepared_versions() {
        let mut c = VersionChains::new();
        c.record_update(1, delta(0, 0), Ts(1));
        c.record_update(1, delta(0, 1), Ts(3));
        c.mark_prepared(1, Ts(3));
        c.record_update(2, delta(0, 2), Ts(2));
        let out = c.gc(Ts(4));
        // Only the unprepared row folds; the prepared row's whole chain
        // (including its committed T1 tail) is untouched.
        assert_eq!(out.folds.len(), 1);
        assert_eq!(out.folds[0].row, 2);
        assert_eq!(c.newest_slot(1), delta(0, 1));
        assert_eq!(c.meta(delta(0, 0)).unwrap().write_ts, Ts(1));
        let ts: Vec<u64> = c.log().iter().map(|e| e.ts.0).collect();
        assert_eq!(ts, vec![1, 3]);
        // Once the scope commits, the tail becomes reclaimable.
        c.commit_prepared(Ts(3));
        let out = c.gc(Ts(4));
        assert_eq!(out.folds.len(), 1);
        assert_eq!(out.folds[0].freed, vec![delta(0, 1), delta(0, 0)]);
        assert!(c.log().is_empty());
    }

    #[test]
    fn gc_is_idempotent_at_the_same_cut() {
        let mut c = VersionChains::new();
        c.record_update(1, delta(0, 0), Ts(1));
        c.record_update(1, delta(0, 1), Ts(5));
        assert!(!c.gc(Ts(3)).is_empty());
        assert!(c.gc(Ts(3)).is_empty(), "nothing left below the cut");
        assert_eq!(c.newest_slot(1), delta(0, 1));
    }
}
