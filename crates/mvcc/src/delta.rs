//! Delta-region slot allocation.
//!
//! New versions of a row must live in the delta arena whose rotation
//! matches the origin row's block (§5.1), so the allocator is per-arena.
//! Slots freed by defragmentation are recycled.

/// Allocator over the delta arenas of one table.
#[derive(Debug, Clone)]
pub struct DeltaAllocator {
    arena_rows: u64,
    next: Vec<u64>,
    free: Vec<Vec<u64>>,
}

/// Raised when a delta arena has no free slot: the engine must run
/// defragmentation before accepting more updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaFull {
    /// The exhausted rotation arena.
    pub rotation: u32,
}

impl std::fmt::Display for DeltaFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "delta arena {} is full", self.rotation)
    }
}

impl std::error::Error for DeltaFull {}

impl DeltaAllocator {
    /// Creates an allocator with `arenas` rotation arenas of `arena_rows`
    /// slots each.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(arenas: u32, arena_rows: u64) -> DeltaAllocator {
        assert!(arenas > 0 && arena_rows > 0, "degenerate delta region");
        DeltaAllocator {
            arena_rows,
            next: vec![0; arenas as usize],
            free: vec![Vec::new(); arenas as usize],
        }
    }

    /// Slots per arena.
    pub fn arena_rows(&self) -> u64 {
        self.arena_rows
    }

    /// Allocates a slot in `rotation`'s arena.
    ///
    /// # Errors
    ///
    /// Returns [`DeltaFull`] when the arena is exhausted.
    pub fn alloc(&mut self, rotation: u32) -> Result<u64, DeltaFull> {
        let r = rotation as usize;
        if let Some(idx) = self.free[r].pop() {
            return Ok(idx);
        }
        if self.next[r] < self.arena_rows {
            let idx = self.next[r];
            self.next[r] += 1;
            Ok(idx)
        } else {
            Err(DeltaFull { rotation })
        }
    }

    /// Returns a slot to `rotation`'s free list.
    pub fn release(&mut self, rotation: u32, idx: u64) {
        debug_assert!(idx < self.arena_rows);
        self.free[rotation as usize].push(idx);
    }

    /// Live (allocated, unreleased) slots in `rotation`'s arena.
    pub fn live(&self, rotation: u32) -> u64 {
        let r = rotation as usize;
        self.next[r] - self.free[r].len() as u64
    }

    /// Live slots across all arenas.
    pub fn live_total(&self) -> u64 {
        (0..self.next.len() as u32).map(|r| self.live(r)).sum()
    }

    /// Fraction of total capacity in use.
    pub fn occupancy(&self) -> f64 {
        self.live_total() as f64 / (self.arena_rows * self.next.len() as u64) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_per_arena() {
        let mut a = DeltaAllocator::new(4, 2);
        assert_eq!(a.alloc(0), Ok(0));
        assert_eq!(a.alloc(0), Ok(1));
        assert_eq!(a.alloc(0), Err(DeltaFull { rotation: 0 }));
        // Other arenas unaffected.
        assert_eq!(a.alloc(3), Ok(0));
        assert_eq!(a.live(0), 2);
        assert_eq!(a.live_total(), 3);
    }

    #[test]
    fn release_recycles() {
        let mut a = DeltaAllocator::new(2, 2);
        let x = a.alloc(1).unwrap();
        a.release(1, x);
        assert_eq!(a.live(1), 0);
        assert_eq!(a.alloc(1), Ok(x));
    }

    #[test]
    fn occupancy_fraction() {
        let mut a = DeltaAllocator::new(2, 4);
        a.alloc(0).unwrap();
        a.alloc(1).unwrap();
        assert!((a.occupancy() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn error_formats() {
        assert_eq!(
            DeltaFull { rotation: 2 }.to_string(),
            "delta arena 2 is full"
        );
    }
}
