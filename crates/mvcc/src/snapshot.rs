//! Bitmap snapshots (§5.2, Fig. 6(c)).
//!
//! Before an analytical query, the CPU folds the commit log into two
//! visibility bitmaps — one over the data region, one over the delta
//! region — and the PIM units consult their bank-local copy while
//! scanning. Bit `1` means the row version is part of the snapshot.
//! Updates are incremental: entries newer than the snapshot timestamp are
//! left for the next snapshot (transaction T5 in the paper's example).

use serde::{Deserialize, Serialize};

use pushtap_format::RowSlot;

use crate::chain::LogEntry;
use crate::timestamp::Ts;

/// A dense bitset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitmap {
    words: Vec<u64>,
    len: u64,
}

impl Bitmap {
    /// Creates a bitmap of `len` bits, all set to `fill`.
    pub fn new(len: u64, fill: bool) -> Bitmap {
        let words = vec![if fill { !0u64 } else { 0 }; len.div_ceil(64) as usize];
        let mut b = Bitmap { words, len };
        if fill {
            b.trim_tail();
        }
        b
    }

    fn trim_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the bitmap is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: u64) -> bool {
        assert!(i < self.len, "bit {i} out of range");
        self.words[(i / 64) as usize] >> (i % 64) & 1 == 1
    }

    /// Sets the bit at `i` to `v`; returns whether the bit changed.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: u64, v: bool) -> bool {
        assert!(i < self.len, "bit {i} out of range");
        let w = &mut self.words[(i / 64) as usize];
        let mask = 1u64 << (i % 64);
        let old = *w & mask != 0;
        if v {
            *w |= mask;
        } else {
            *w &= !mask;
        }
        old != v
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Bytes occupied by this bitmap (what each device stores).
    pub fn bytes(&self) -> u64 {
        self.len.div_ceil(8)
    }
}

/// Statistics of one incremental snapshot update, used for timing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotUpdate {
    /// Log entries folded into the bitmaps.
    pub entries_applied: u64,
    /// Bits that actually changed.
    pub bits_flipped: u64,
    /// Changed bits in the data-region bitmap (scattered by row).
    pub data_flips: u64,
    /// Changed bits in the delta-region bitmap (clustered: delta slots
    /// allocate sequentially within arenas).
    pub delta_flips: u64,
}

/// The visibility snapshot of one table.
#[derive(Debug, Clone)]
pub struct Snapshot {
    ts: Ts,
    data: Bitmap,
    delta: Bitmap,
    arena_rows: u64,
    cursor: usize,
}

impl Snapshot {
    /// Creates the initial snapshot: every data row visible, no delta
    /// version visible.
    pub fn new(n_rows: u64, arenas: u32, arena_rows: u64) -> Snapshot {
        Snapshot {
            ts: Ts::ZERO,
            data: Bitmap::new(n_rows, true),
            delta: Bitmap::new(arenas as u64 * arena_rows, false),
            arena_rows,
            cursor: 0,
        }
    }

    /// The snapshot timestamp.
    pub fn ts(&self) -> Ts {
        self.ts
    }

    fn delta_index(&self, rotation: u32, idx: u64) -> u64 {
        rotation as u64 * self.arena_rows + idx
    }

    fn bit_of(&self, slot: RowSlot) -> (bool, u64) {
        match slot {
            RowSlot::Data { row } => (true, row),
            RowSlot::Delta { rotation, idx } => (false, self.delta_index(rotation, idx)),
        }
    }

    fn set_slot(&mut self, slot: RowSlot, v: bool) -> (bool, bool) {
        let (is_data, i) = self.bit_of(slot);
        let changed = if is_data {
            self.data.set(i, v)
        } else {
            self.delta.set(i, v)
        };
        (changed, is_data)
    }

    /// Whether `slot` is visible in this snapshot.
    pub fn visible(&self, slot: RowSlot) -> bool {
        let (is_data, i) = self.bit_of(slot);
        if is_data {
            self.data.get(i)
        } else {
            self.delta.get(i)
        }
    }

    /// Folds log entries with `ts ≤ upto` into the bitmaps, advancing the
    /// snapshot timestamp to `upto`. Entries must be the same log the
    /// previous updates consumed (the internal cursor tracks progress).
    ///
    /// # Panics
    ///
    /// Panics if the log shrank below the cursor (the engine must only
    /// clear the log together with [`Snapshot::reset_after_defrag`]).
    pub fn update(&mut self, log: &[LogEntry], upto: Ts) -> SnapshotUpdate {
        assert!(
            log.len() >= self.cursor,
            "log shrank without a snapshot reset"
        );
        let mut stats = SnapshotUpdate::default();
        while self.cursor < log.len() && log[self.cursor].ts <= upto {
            let e = log[self.cursor];
            stats.entries_applied += 1;
            for (slot, v) in [(e.prev_slot, false), (e.new_slot, true)] {
                let (changed, is_data) = self.set_slot(slot, v);
                stats.bits_flipped += changed as u64;
                if changed {
                    if is_data {
                        stats.data_flips += 1;
                    } else {
                        stats.delta_flips += 1;
                    }
                }
            }
            self.cursor += 1;
        }
        self.ts = self.ts.max(upto);
        stats
    }

    /// Reconciles the bitmaps with one garbage-collection fold: the
    /// `freed` delta slots of `row` were released and the newest of them
    /// copied back into the data region. Any freed slot the snapshot
    /// held visible is replaced by the data-region bit — for a snapshot
    /// at or above the folded version's timestamp the data region now
    /// holds exactly the bytes that slot held, so visibility is
    /// unchanged byte-for-byte. Returns the number of bits flipped.
    pub fn note_gc_fold(&mut self, row: u64, freed: &[RowSlot]) -> u64 {
        let mut flips = 0u64;
        let mut was_visible = false;
        for &slot in freed {
            debug_assert!(
                matches!(slot, RowSlot::Delta { .. }),
                "gc never frees a data-region slot"
            );
            let (changed, _) = self.set_slot(slot, false);
            was_visible |= changed;
            flips += changed as u64;
        }
        if was_visible {
            flips += self.data.set(row, true) as u64;
        }
        flips
    }

    /// Adjusts the incremental cursor after garbage collection removed
    /// log entries at the given (pre-trim, ascending) indices: entries
    /// the cursor had already consumed shift it back one each, so it
    /// keeps pointing at the same first unconsumed entry. Trimmed
    /// entries at or past the cursor were never folded and never will
    /// be — their effects are covered by [`Snapshot::note_gc_fold`].
    pub fn note_log_trimmed(&mut self, trimmed: &[usize]) {
        let consumed = trimmed.partition_point(|&i| i < self.cursor);
        self.cursor -= consumed;
    }

    /// Resets visibility after defragmentation: every data row visible
    /// again, all delta versions gone, cursor rewound for the cleared log.
    pub fn reset_after_defrag(&mut self, upto: Ts) {
        self.data = Bitmap::new(self.data.len(), true);
        self.delta = Bitmap::new(self.delta.len(), false);
        self.cursor = 0;
        self.ts = self.ts.max(upto);
    }

    /// Visible data-region rows.
    pub fn visible_data_rows(&self) -> u64 {
        self.data.count_ones()
    }

    /// Visible delta-region versions.
    pub fn visible_delta_rows(&self) -> u64 {
        self.delta.count_ones()
    }

    /// Bitmap bytes stored per device (both regions).
    pub fn bytes_per_device(&self) -> u64 {
        self.data.bytes() + self.delta.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::VersionChains;

    fn delta(rotation: u32, idx: u64) -> RowSlot {
        RowSlot::Delta { rotation, idx }
    }

    #[test]
    fn bitmap_basics() {
        let mut b = Bitmap::new(70, false);
        assert_eq!(b.len(), 70);
        assert!(!b.get(69));
        assert!(b.set(69, true));
        assert!(!b.set(69, true)); // unchanged
        assert!(b.get(69));
        assert_eq!(b.count_ones(), 1);
        assert_eq!(b.bytes(), 9);
        let full = Bitmap::new(70, true);
        assert_eq!(full.count_ones(), 70);
    }

    /// The paper's Fig. 6(c) walk-through: initial bitmap 111|0000; after
    /// T1 (a→d): 011|1000; after T2 (c→e): 010|1100; after T3 (d→f):
    /// 010|0110; T5 is newer than the snapshot and is skipped.
    #[test]
    fn figure_6c_example() {
        // Rows a,b,c = 0,1,2; delta slots d,e,f,g = idx 0..3 in arena 0.
        let mut chains = VersionChains::new();
        let mut snap = Snapshot::new(3, 1, 4);
        chains.record_update(0, delta(0, 0), Ts(1)); // T1: a → d
        chains.record_update(2, delta(0, 1), Ts(2)); // T2: c → e
        chains.record_update(0, delta(0, 2), Ts(3)); // T3: d → f
        chains.record_update(1, delta(0, 3), Ts(5)); // T5: b → g (after the query)

        let stats = snap.update(chains.log(), Ts(4));
        assert_eq!(stats.entries_applied, 3);
        assert!(!snap.visible(RowSlot::Data { row: 0 })); // a invisible
        assert!(snap.visible(RowSlot::Data { row: 1 })); // b still visible (T5 skipped)
        assert!(!snap.visible(RowSlot::Data { row: 2 })); // c invisible
        assert!(!snap.visible(delta(0, 0))); // d superseded by f
        assert!(snap.visible(delta(0, 1))); // e visible
        assert!(snap.visible(delta(0, 2))); // f visible
        assert!(!snap.visible(delta(0, 3))); // g not yet in snapshot
        assert_eq!(snap.ts(), Ts(4));

        // The next snapshot picks T5 up.
        let stats = snap.update(chains.log(), Ts(6));
        assert_eq!(stats.entries_applied, 1);
        assert!(snap.visible(delta(0, 3)));
        assert!(!snap.visible(RowSlot::Data { row: 1 }));
    }

    #[test]
    fn incremental_update_is_idempotent_per_entry() {
        let mut chains = VersionChains::new();
        let mut snap = Snapshot::new(4, 1, 4);
        chains.record_update(0, delta(0, 0), Ts(1));
        let s1 = snap.update(chains.log(), Ts(1));
        let s2 = snap.update(chains.log(), Ts(1));
        assert_eq!(s1.entries_applied, 1);
        assert_eq!(s2.entries_applied, 0); // cursor does not re-apply
    }

    #[test]
    fn snapshot_counts_and_sizes() {
        let snap = Snapshot::new(100, 4, 25);
        assert_eq!(snap.visible_data_rows(), 100);
        assert_eq!(snap.visible_delta_rows(), 0);
        assert_eq!(snap.bytes_per_device(), 13 + 13);
    }

    #[test]
    fn reset_after_defrag_restores_data_visibility() {
        let mut chains = VersionChains::new();
        let mut snap = Snapshot::new(4, 1, 4);
        chains.record_update(0, delta(0, 0), Ts(1));
        snap.update(chains.log(), Ts(2));
        assert!(!snap.visible(RowSlot::Data { row: 0 }));
        chains.clear_after_defrag();
        snap.reset_after_defrag(Ts(2));
        assert!(snap.visible(RowSlot::Data { row: 0 }));
        assert_eq!(snap.visible_delta_rows(), 0);
        // Cursor rewound: an empty log is acceptable again.
        snap.update(chains.log(), Ts(3));
    }

    /// A pinned snapshot survives a GC fold byte-for-byte: the version
    /// it saw in the delta region is repointed at the data region, which
    /// now holds exactly those bytes.
    #[test]
    fn gc_fold_repoints_a_visible_version_at_the_data_region() {
        let mut chains = VersionChains::new();
        let mut snap = Snapshot::new(4, 1, 4);
        chains.record_update(0, delta(0, 0), Ts(1));
        chains.record_update(0, delta(0, 1), Ts(5));
        snap.update(chains.log(), Ts(2)); // snapshot sees T1's version
        assert!(snap.visible(delta(0, 0)));
        assert!(!snap.visible(RowSlot::Data { row: 0 }));

        // GC at cut T2 folds T1's version into the data region.
        let out = chains.gc(Ts(2));
        assert_eq!(out.folds.len(), 1);
        let flips = snap.note_gc_fold(0, &out.folds[0].freed);
        snap.note_log_trimmed(&out.log_trimmed);
        assert_eq!(flips, 2);
        assert!(!snap.visible(delta(0, 0)));
        assert!(snap.visible(RowSlot::Data { row: 0 }));
        assert!(!snap.visible(delta(0, 1)), "T5 still above the snapshot");

        // The cursor survived the trim: advancing folds T5 exactly once,
        // clearing the re-anchored data bit.
        let stats = snap.update(chains.log(), Ts(6));
        assert_eq!(stats.entries_applied, 1);
        assert!(snap.visible(delta(0, 1)));
        assert!(!snap.visible(RowSlot::Data { row: 0 }));
    }

    /// A snapshot already past the fold point is untouched by the
    /// reconciliation: the freed slots were superseded in its bitmaps.
    #[test]
    fn gc_fold_is_invisible_to_a_snapshot_above_the_chain() {
        let mut chains = VersionChains::new();
        let mut snap = Snapshot::new(4, 1, 4);
        chains.record_update(0, delta(0, 0), Ts(1));
        chains.record_update(0, delta(0, 1), Ts(2));
        snap.update(chains.log(), Ts(3));
        let out = chains.gc(Ts(3));
        let flips = snap.note_gc_fold(0, &out.folds[0].freed);
        snap.note_log_trimmed(&out.log_trimmed);
        // The newest folded version was the visible one → repointed.
        assert_eq!(flips, 2);
        assert!(snap.visible(RowSlot::Data { row: 0 }));
        snap.update(chains.log(), Ts(4)); // empty log, cursor rewound to 0
        assert_eq!(snap.visible_delta_rows(), 0);
    }

    #[test]
    fn log_trim_only_rewinds_consumed_entries() {
        let mut chains = VersionChains::new();
        let mut snap = Snapshot::new(4, 1, 4);
        chains.record_update(0, delta(0, 0), Ts(1));
        chains.record_update(1, delta(0, 1), Ts(2));
        chains.record_update(2, delta(0, 2), Ts(3));
        snap.update(chains.log(), Ts(1)); // cursor at 1
                                          // Trimming one consumed (index 0) and one unconsumed (index 2)
                                          // entry moves the cursor back exactly one.
        snap.note_log_trimmed(&[0, 2]);
        let log: Vec<LogEntry> = chains.log()[1..2].to_vec();
        let stats = snap.update(&log, Ts(4));
        assert_eq!(stats.entries_applied, 1, "only T2 was left to fold");
        assert!(snap.visible(delta(0, 1)));
    }

    #[test]
    #[should_panic(expected = "log shrank")]
    fn shrunken_log_without_reset_panics() {
        let mut chains = VersionChains::new();
        let mut snap = Snapshot::new(4, 1, 4);
        chains.record_update(0, delta(0, 0), Ts(1));
        snap.update(chains.log(), Ts(1));
        chains.clear_after_defrag();
        // Forgot reset_after_defrag:
        snap.update(chains.log(), Ts(2));
    }
}
