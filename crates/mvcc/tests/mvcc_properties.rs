//! Property-based tests of the MVCC core: for arbitrary committed update
//! histories, the bitmap snapshot and the version chains must agree on
//! visibility, and exactly one version of every row is visible at any
//! snapshot timestamp.

use proptest::prelude::*;
use pushtap_format::RowSlot;
use pushtap_mvcc::{DeltaAllocator, Snapshot, Ts, VersionChains};

const ROWS: u64 = 24;
const ARENAS: u32 = 4;
const ARENA_ROWS: u64 = 512;

/// An arbitrary history: a sequence of row updates (rotation derived from
/// the row, as the unified format requires).
fn arb_history() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..ROWS, 0..200)
}

fn apply(history: &[u64]) -> (VersionChains, DeltaAllocator, Vec<(Ts, u64, RowSlot)>) {
    let mut chains = VersionChains::new();
    let mut alloc = DeltaAllocator::new(ARENAS, ARENA_ROWS);
    let mut committed = Vec::new();
    for (i, &row) in history.iter().enumerate() {
        let ts = Ts(i as u64 + 1);
        let rotation = (row % ARENAS as u64) as u32;
        let idx = alloc.alloc(rotation).expect("arena sized for history");
        let slot = RowSlot::Delta { rotation, idx };
        chains.record_update(row, slot, ts);
        committed.push((ts, row, slot));
    }
    (chains, alloc, committed)
}

/// The version the chains say is visible at `ts`.
fn chain_visible(chains: &mut VersionChains, row: u64, ts: Ts) -> RowSlot {
    chains.visible_at(row, ts).0
}

proptest! {
    /// Snapshot bitmaps and chain walks agree at the snapshot timestamp.
    #[test]
    fn bitmap_agrees_with_chains(history in arb_history(), cut in 0usize..=200) {
        let (mut chains, _, _) = apply(&history);
        let upto = Ts(cut.min(history.len()) as u64);
        let mut snap = Snapshot::new(ROWS, ARENAS, ARENA_ROWS);
        snap.update(chains.log(), upto);
        for row in 0..ROWS {
            let expect = chain_visible(&mut chains, row, upto);
            prop_assert!(
                snap.visible(expect),
                "row {row}: chain-visible {expect:?} not visible in bitmap"
            );
        }
    }

    /// Exactly one version of each row is visible in any snapshot: the
    /// origin xor one delta version.
    #[test]
    fn exactly_one_visible_version(history in arb_history()) {
        let (chains, _, committed) = apply(&history);
        let upto = Ts(history.len() as u64);
        let mut snap = Snapshot::new(ROWS, ARENAS, ARENA_ROWS);
        snap.update(chains.log(), upto);
        for row in 0..ROWS {
            let mut visible = snap.visible(RowSlot::Data { row }) as u32;
            for (_, r, slot) in &committed {
                if *r == row && snap.visible(*slot) {
                    visible += 1;
                }
            }
            prop_assert_eq!(visible, 1, "row {} has {} visible versions", row, visible);
        }
    }

    /// Incremental snapshotting in arbitrary prefix steps equals one big
    /// jump to the same timestamp.
    #[test]
    fn incremental_equals_batch(history in arb_history(), steps in 1usize..6) {
        let (chains, _, _) = apply(&history);
        let n = history.len() as u64;
        let mut incremental = Snapshot::new(ROWS, ARENAS, ARENA_ROWS);
        for s in 1..=steps {
            let upto = Ts(n * s as u64 / steps as u64);
            incremental.update(chains.log(), upto);
        }
        incremental.update(chains.log(), Ts(n));
        let mut batch = Snapshot::new(ROWS, ARENAS, ARENA_ROWS);
        batch.update(chains.log(), Ts(n));
        for row in 0..ROWS {
            prop_assert_eq!(
                incremental.visible(RowSlot::Data { row }),
                batch.visible(RowSlot::Data { row })
            );
        }
        for (_, _, slot) in apply(&history).2 {
            prop_assert_eq!(incremental.visible(slot), batch.visible(slot));
        }
    }

    /// The allocator never hands out a live slot twice, and reclaiming
    /// every chain returns the allocator to empty.
    #[test]
    fn allocator_reclaims_fully(history in arb_history()) {
        let (chains, mut alloc, committed) = apply(&history);
        // Live slots are exactly the committed versions.
        prop_assert_eq!(alloc.live_total(), committed.len() as u64);
        // All slots distinct.
        let mut seen = std::collections::HashSet::new();
        for (_, _, slot) in &committed {
            prop_assert!(seen.insert(*slot), "slot {:?} allocated twice", slot);
        }
        // Defrag walk: release every chain slot once.
        for row in 0..ROWS {
            let (slots, _) = chains.chain_slots(row);
            for slot in slots {
                if let RowSlot::Delta { rotation, idx } = slot {
                    alloc.release(rotation, idx);
                }
            }
        }
        prop_assert_eq!(alloc.live_total(), 0);
    }

    /// Chain lengths equal per-row update counts, and the newest slot is
    /// the last committed version of the row.
    #[test]
    fn chain_structure_matches_history(history in arb_history()) {
        let (chains, _, committed) = apply(&history);
        for row in 0..ROWS {
            let count = history.iter().filter(|&&r| r == row).count();
            let (slots, steps) = chains.chain_slots(row);
            prop_assert_eq!(slots.len(), count);
            prop_assert_eq!(steps as usize, count);
            if let Some((_, _, last)) = committed.iter().rev().find(|(_, r, _)| *r == row) {
                prop_assert_eq!(chains.newest_slot(row), *last);
            } else {
                prop_assert_eq!(chains.newest_slot(row), RowSlot::Data { row });
            }
        }
    }

    /// Equation 3 is exact: for any positive parameters with pim > cpu,
    /// the strategy picked by the crossover is the cheaper of Eq. 1/2.
    #[test]
    fn eq3_consistent_with_costs(
        m in 1.0f64..64.0,
        cpu in 1e8f64..1e11,
        ratio in 1.01f64..20.0,
        n in 1u64..100_000,
        p in 0.01f64..=1.0,
        d in 1u32..16,
        w in 1u32..512,
    ) {
        let model = pushtap_mvcc::DefragCostModel::new(m, cpu, cpu * ratio);
        let c = model.comm_cpu(n, p, d, w);
        let q = model.comm_pim(n, p, d, w);
        match model.pick(p, w) {
            pushtap_mvcc::DefragStrategy::Pim => prop_assert!(q <= c + 1e-12),
            pushtap_mvcc::DefragStrategy::Cpu => prop_assert!(c <= q + 1e-12),
            pushtap_mvcc::DefragStrategy::Hybrid => prop_assert!(false, "pick returned Hybrid"),
        }
    }
}
