//! Criterion benches: one group per paper figure, at reduced scale.
//!
//! These measure the *harness* end-to-end (layout generation, transaction
//! execution, scans, defragmentation) so regressions in any layer show up
//! as timing changes; the printed figure data comes from the `fig*`
//! binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use pushtap_bench::{fig10, fig11, fig12, fig8, fig9};
use pushtap_olap::Query;

const SCALE: f64 = 0.0003;

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("threshold_sweep", |b| {
        b.iter(|| black_box(fig8::threshold_sweep(10)))
    });
    g.bench_function("subset_sweep", |b| {
        b.iter(|| black_box(fig8::subset_sweep()))
    });
    g.bench_function("htapbench", |b| {
        b.iter(|| black_box(fig8::htapbench_effectiveness(0.55)))
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("oltp_formats_200txn", |b| {
        b.iter(|| black_box(fig9::oltp_formats(SCALE, &[200])))
    });
    g.bench_function("olap_consistency_500txn", |b| {
        b.iter(|| black_box(fig9::olap_consistency(SCALE, &[500], Query::Q6)))
    });
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("frontier_measure_and_sweep", |b| {
        b.iter(|| black_box(fig10::frontiers(SCALE, 8)))
    });
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("oltp_overhead", |b| {
        b.iter(|| black_box(fig11::oltp_overhead(SCALE, 300, &[900])))
    });
    g.bench_function("fragmentation_sweep", |b| {
        b.iter(|| black_box(fig11::fragmentation_vs_defrag(SCALE, &[200, 800], 200)))
    });
    g.bench_function("txn_breakdown", |b| {
        b.iter(|| black_box(fig11::txn_breakdown(SCALE, 300)))
    });
    g.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("defrag_strategies", |b| {
        b.iter(|| black_box(fig12::defrag_strategies(SCALE, &[400])))
    });
    g.bench_function("wram_sweep", |b| {
        b.iter(|| black_box(fig12::wram_sweep(1.0, &[16, 64, 256])))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig8,
    bench_fig9,
    bench_fig10,
    bench_fig11,
    bench_fig12
);
criterion_main!(figures);
