//! Ablation benches for the design choices DESIGN.md calls out:
//! block-circulant placement, bitmap vs pointer-list snapshots, the
//! two-phase execution split, and the defragmentation period.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use pushtap_core::{Pushtap, PushtapConfig};
use pushtap_format::Placement;
use pushtap_mvcc::{Snapshot, Ts, VersionChains};
use pushtap_olap::ScanEngine;
use pushtap_pim::{ControlArch, MemSystem, PimOpKind, Ps, SystemConfig};

/// Block-circulant vs static placement: with rotation, a hot column's
/// scan spreads over all `d` devices; without, one PIM unit per bank does
/// all the work — a `d`× wall-clock difference at equal total bytes.
fn ablate_circulant(c: &mut Criterion) {
    let cfg = SystemConfig::dimm();
    let engine = ScanEngine::new(ControlArch::Pushtap, &cfg);
    let rows = 1_000_000u64;
    let width = 8u64;
    let total = rows * width;
    let d = cfg.pim_geometry.devices_per_rank as u64;
    let mut g = c.benchmark_group("ablate_circulant");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("rotated_all_units", |b| {
        b.iter(|| {
            let mut mem = MemSystem::new(cfg);
            let per_unit = total.div_ceil(engine.units());
            black_box(
                engine
                    .timed_phases(PimOpKind::Filter, per_unit, total, 1.0, &mut mem, Ps::ZERO)
                    .end,
            )
        })
    });
    g.bench_function("static_one_device", |b| {
        b.iter(|| {
            let mut mem = MemSystem::new(cfg);
            // Only units on one device per rank participate: d× the
            // per-unit work.
            let per_unit = total.div_ceil(engine.units() / d);
            black_box(
                engine
                    .timed_phases(PimOpKind::Filter, per_unit, total, 1.0, &mut mem, Ps::ZERO)
                    .end,
            )
        })
    });
    g.finish();
    // Sanity: the placement math itself balances perfectly.
    let p = Placement::new(8, 1024);
    let shard: u64 = (0..8)
        .map(|dev| {
            p.ranges_on_device(0, dev, 0, 8 * 1024)
                .iter()
                .map(|(lo, hi)| hi - lo)
                .sum::<u64>()
        })
        .max()
        .unwrap();
    assert_eq!(shard, 1024);
}

/// Bitmap snapshot (1 bit/row) vs pointer-list snapshot (8 B/row): the
/// §5.2 encoding shrinks the CPU→PIM snapshot transfer by 64×.
fn ablate_snapshot_encoding(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_snapshot");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_secs(1));
    let n_rows = 100_000u64;
    g.bench_function("bitmap_update_10k_entries", |b| {
        b.iter(|| {
            let mut chains = VersionChains::new();
            let mut snap = Snapshot::new(n_rows, 8, 4096);
            for i in 0..10_000u64 {
                chains.record_update(
                    i % n_rows,
                    pushtap_format::RowSlot::Delta {
                        rotation: (i % 8) as u32,
                        idx: i % 4096,
                    },
                    Ts(i + 1),
                );
            }
            black_box(snap.update(chains.log(), Ts(10_000)))
        })
    });
    g.bench_function("pointer_list_10k_entries", |b| {
        b.iter(|| {
            // The strawman ships an 8-byte pointer per visible row.
            let mut list: Vec<u64> = Vec::with_capacity(n_rows as usize);
            for i in 0..n_rows {
                list.push(black_box(i) * 8);
            }
            black_box(list.len())
        })
    });
    g.finish();
}

/// Defragmentation period: never vs every 500 vs every 2000 transactions,
/// total wall-clock for the same workload.
fn ablate_defrag_period(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_defrag_period");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_secs(1));
    for period in [0u64, 500, 2_000] {
        g.bench_function(format!("period_{period}"), |b| {
            b.iter(|| {
                let mut cfg = PushtapConfig::small();
                cfg.db.scale = 0.0003;
                cfg.db.min_delta_rows = 16_384;
                cfg.defrag_period = period;
                let mut p = Pushtap::new(cfg).expect("build");
                let mut gen = p.txn_gen(1);
                black_box(p.run_txns(&mut gen, 1_500).total_time())
            })
        });
    }
    g.finish();
}

/// Two-phase execution vs monolithic offload: with one giant phase the
/// banks stay locked for the whole scan (modelled by the original
/// architecture's blocking) — measure the CPU-blocked time difference.
fn ablate_two_phase(c: &mut Criterion) {
    let cfg = SystemConfig::dimm();
    let rows = 2_000_000u64;
    let total = rows * 8;
    let mut g = c.benchmark_group("ablate_two_phase");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_secs(1));
    for (name, arch) in [
        ("two_phase_pushtap", ControlArch::Pushtap),
        ("monolithic_original", ControlArch::Original),
    ] {
        let engine = ScanEngine::new(arch, &cfg);
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut mem = MemSystem::new(cfg);
                let per_unit = total.div_ceil(engine.units());
                let out = engine.timed_phases(
                    PimOpKind::Filter,
                    per_unit,
                    total,
                    1.0,
                    &mut mem,
                    Ps::ZERO,
                );
                black_box(out.cpu_blocked)
            })
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    ablate_circulant,
    ablate_snapshot_encoding,
    ablate_defrag_period,
    ablate_two_phase
);
criterion_main!(ablations);
