//! Prints the energy extension: PIM-local vs CPU-bus column scans.
fn main() {
    pushtap_bench::energy::print_all();
}
