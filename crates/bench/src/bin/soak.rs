//! Runs the garbage-collection soak (GC-on vs GC-off under sustained
//! TPC-C traffic), prints both rows, and writes `BENCH_soak.json`.
//! `--txns <n>` sets the stream length (default 100 000; CI smokes at
//! 20 000).
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let txns: u64 = flag_value(&args, "--txns")
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    pushtap_bench::soak::print_and_write_json(txns).expect("write BENCH_soak.json");
}

/// The operand following `flag`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
