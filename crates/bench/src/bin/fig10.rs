//! Regenerates Figure 10 of the paper. Optional argument: population
//! scale (default chosen for a quick run; 1.0 = the paper's 20 GB).
fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.001);

    pushtap_bench::fig10::print_all(scale);
}
