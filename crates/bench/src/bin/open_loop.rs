//! Runs the open-loop queueing sweep (arrival rate × shard count),
//! prints the table, and writes `BENCH_open_loop.json`. `--txns <n>`
//! sets the arrivals per point (default 4000), `--shards <list>` the
//! comma-separated shard counts (default `2,4,8`).
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let txns: u64 = flag_value(&args, "--txns")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4000);
    let shards: Vec<u32> = flag_value(&args, "--shards")
        .map(|s| {
            s.split(',')
                .map(|p| p.trim().parse().expect("shard count"))
                .collect()
        })
        .unwrap_or_else(|| vec![2, 4, 8]);
    pushtap_bench::open_loop::print_and_write_json(&shards, txns)
        .expect("write BENCH_open_loop.json");
}

/// The operand following `flag`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
