//! Prints Table 1 (system configuration) from the live config structs.
fn main() {
    pushtap_bench::table1::print_all();
}
