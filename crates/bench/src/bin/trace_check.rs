//! Validates a Chrome-trace JSON document produced by the trace writer
//! (`shard_scale --trace <path>` or `all_figures --trace <path>`):
//! well-formed JSON, required event fields, monotone timestamps per
//! track, matched async begin/end pairs. Prints the document's summary
//! stats on success; exits non-zero with the validation error
//! otherwise. CI runs this on the smoke-test trace.
use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: trace_check <trace.json>");
        return ExitCode::FAILURE;
    };
    let doc = match std::fs::read_to_string(&path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("trace_check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match pushtap_trace::chrome::validate(&doc) {
        Ok(stats) => {
            println!(
                "{path}: valid Chrome trace — {} events ({} complete, {} instants, \
                 {} async pairs) on {} tracks, {:.3} ms span",
                stats.events,
                stats.complete,
                stats.instants,
                stats.async_pairs,
                stats.tracks,
                stats.max_ts_us / 1_000.0
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace_check: {path}: INVALID — {e}");
            ExitCode::FAILURE
        }
    }
}
