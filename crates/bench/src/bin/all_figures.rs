//! Regenerates every figure in sequence (the full evaluation pass).
//! Optional arguments: population scale (default 0.001), `--json`
//! (write `BENCH_shard_scale.json` alongside the printed tables), and
//! `--trace <path>` (write a Chrome-trace timeline of one traced
//! 8-shard pipelined uniform-mix batch).
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();
    // The scale is the first positional argument: skip flags (and the
    // `--trace` operand) when looking for it.
    let scale: f64 = {
        let mut scale = 0.001;
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--json" => i += 1,
                "--trace" => i += 2,
                s => {
                    if let Ok(v) = s.parse() {
                        scale = v;
                    }
                    i += 1;
                }
            }
        }
        scale
    };
    pushtap_bench::table1::print_all();
    println!();
    pushtap_bench::fig8::print_all();
    println!();
    pushtap_bench::fig9::print_all(scale);
    println!();
    pushtap_bench::fig10::print_all(scale);
    println!();
    pushtap_bench::fig11::print_all(scale);
    println!();
    pushtap_bench::fig12::print_all(scale);
    println!();
    if std::env::args().any(|a| a == "--json") {
        pushtap_bench::shard_scale::print_and_write_json().expect("write BENCH_shard_scale.json");
    } else {
        pushtap_bench::shard_scale::print_all();
    }
    if let Some(path) = trace_path {
        pushtap_bench::shard_scale::write_trace(&path, 8, 240).expect("write trace");
    }
}
