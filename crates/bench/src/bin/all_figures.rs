//! Regenerates every figure in sequence (the full evaluation pass).
//! Optional arguments: population scale (default 0.001) and `--json`
//! (write `BENCH_shard_scale.json` alongside the printed tables).
fn main() {
    let scale: f64 = std::env::args()
        .skip(1)
        .find(|a| a != "--json")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.001);
    pushtap_bench::table1::print_all();
    println!();
    pushtap_bench::fig8::print_all();
    println!();
    pushtap_bench::fig9::print_all(scale);
    println!();
    pushtap_bench::fig10::print_all(scale);
    println!();
    pushtap_bench::fig11::print_all(scale);
    println!();
    pushtap_bench::fig12::print_all(scale);
    println!();
    if std::env::args().any(|a| a == "--json") {
        pushtap_bench::shard_scale::print_and_write_json().expect("write BENCH_shard_scale.json");
    } else {
        pushtap_bench::shard_scale::print_all();
    }
}
