//! Regenerates every figure in sequence (the full evaluation pass).
//! Optional argument: population scale (default 0.001).
fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.001);
    pushtap_bench::table1::print_all();
    println!();
    pushtap_bench::fig8::print_all();
    println!();
    pushtap_bench::fig9::print_all(scale);
    println!();
    pushtap_bench::fig10::print_all(scale);
    println!();
    pushtap_bench::fig11::print_all(scale);
    println!();
    pushtap_bench::fig12::print_all(scale);
    println!();
    pushtap_bench::shard_scale::print_all();
}
