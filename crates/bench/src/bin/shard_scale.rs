//! Prints the shard-scaling tables (serial vs pipelined coordinator at
//! 1 → 8 shards). With `--json`, the same single sweep also writes
//! `BENCH_shard_scale.json` so the perf trajectory is machine-readable.
fn main() {
    if std::env::args().any(|a| a == "--json") {
        pushtap_bench::shard_scale::print_and_write_json().expect("write BENCH_shard_scale.json");
    } else {
        pushtap_bench::shard_scale::print_all();
    }
}
