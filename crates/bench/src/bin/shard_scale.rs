//! Prints the shard-scaling throughput table (1 → 4 shards).
fn main() {
    pushtap_bench::shard_scale::print_all();
}
