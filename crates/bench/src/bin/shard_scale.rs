//! Prints the shard-scaling tables (serial vs pipelined coordinator at
//! 1 → 8 shards). With `--json`, the same single sweep also writes
//! `BENCH_shard_scale.json` so the perf trajectory is machine-readable.
//! With `--trace <path>`, additionally writes a Chrome-trace timeline
//! of one traced pipelined uniform-mix batch (load it in Perfetto or
//! `chrome://tracing`); `--trace-shards <n>` sets its shard count
//! (default 8).
fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--json") {
        pushtap_bench::shard_scale::print_and_write_json().expect("write BENCH_shard_scale.json");
    } else {
        pushtap_bench::shard_scale::print_all();
    }
    if let Some(path) = flag_value(&args, "--trace") {
        let shards: u32 = flag_value(&args, "--trace-shards")
            .and_then(|s| s.parse().ok())
            .unwrap_or(8);
        pushtap_bench::shard_scale::write_trace(&path, shards, 240).expect("write trace");
    }
}

/// The operand following `flag`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
