//! Shard-scaling experiment: aggregate OLTP throughput (tpmC) and
//! scatter-gather query latency as the deployment grows from 1 to N
//! warehouse-partitioned shards over one fixed global population.
//!
//! Two load shapes are measured:
//!
//! * **routed** — one global transaction stream routed by home
//!   warehouse, so NewOrder stock lines and Payment customers cross
//!   shards and pay the coordination hop;
//! * **local** — per-shard warehouse-local streams (the perfectly
//!   partitionable upper bound).
//!
//! The interesting gap is between the two: it is the price of
//! cross-shard coordination at this hop latency, the scale-out analogue
//! of the paper's single-instance consistency costs. How wide the gap is
//! depends on the workload's remote-warehouse rate, so the sweep takes a
//! [`RemoteMix`]: the uniform draw (≈ (k−1)/k of touches remote at k
//! shards — a worst case) versus TPC-C's specified 1 % (NewOrder) /
//! 15 % (Payment) remote probabilities.

use pushtap_chbench::RemoteMix;
use pushtap_olap::Query;
use pushtap_pim::Ps;
use pushtap_shard::{ShardConfig, ShardedHtap};

/// One row of the shard-scaling table.
#[derive(Debug, Clone, Copy)]
pub struct ShardPoint {
    /// Shard count.
    pub shards: u32,
    /// Transactions committed (whole deployment).
    pub committed: u64,
    /// Aggregate tpmC of the routed global stream.
    pub routed_tpmc: f64,
    /// Aggregate tpmC of perfectly-partitioned local streams.
    pub local_tpmc: f64,
    /// Fraction of routed transactions touching a remote shard.
    pub cross_shard_fraction: f64,
    /// Realised parallel speedup of the routed batch (≤ shards).
    pub parallel_efficiency: f64,
    /// End-to-end scatter-gather Q6 latency.
    pub q6_latency: Ps,
    /// End-to-end scatter-gather Q1 latency.
    pub q1_latency: Ps,
    /// End-to-end scatter-gather Q9 latency.
    pub q9_latency: Ps,
}

/// Runs the sweep under the given remote-warehouse mix: `txns` routed
/// transactions (and the same count again as local streams) per shard
/// count, then one scatter-gather pass of each query.
pub fn sweep(shard_counts: &[u32], txns: u64, cores: u32, mix: RemoteMix) -> Vec<ShardPoint> {
    shard_counts
        .iter()
        .map(|&shards| {
            let mut service = ShardedHtap::new(ShardConfig::small(shards)).expect("build shards");
            let warehouses = service.map().warehouses();
            let mut gen = service.global_txn_gen(42).with_remote_mix(mix, warehouses);
            let routed = service.run_txns(&mut gen, txns);
            let local = service.run_local_txns(43, txns / shards as u64);
            let q1 = service.run_query(Query::Q1);
            let q6 = service.run_query(Query::Q6);
            let q9 = service.run_query(Query::Q9);
            ShardPoint {
                shards,
                committed: routed.committed() + local.committed(),
                routed_tpmc: routed.tpmc(cores),
                local_tpmc: local.tpmc(cores),
                cross_shard_fraction: routed.remote.cross_shard_fraction(),
                parallel_efficiency: routed.parallel_efficiency(),
                q6_latency: q6.total(),
                q1_latency: q1.total(),
                q9_latency: q9.total(),
            }
        })
        .collect()
}

fn print_table(mix: RemoteMix, label: &str) {
    println!("-- remote-warehouse mix: {label} --");
    println!(
        "{:>6} {:>14} {:>14} {:>8} {:>8} {:>12} {:>12} {:>12}",
        "shards", "routed tpmC", "local tpmC", "x-shard", "par.eff", "Q1", "Q6", "Q9"
    );
    for p in sweep(&[1, 2, 4], 400, 16, mix) {
        println!(
            "{:>6} {:>14.0} {:>14.0} {:>7.1}% {:>8.2} {:>12} {:>12} {:>12}",
            p.shards,
            p.routed_tpmc,
            p.local_tpmc,
            p.cross_shard_fraction * 100.0,
            p.parallel_efficiency,
            p.q1_latency,
            p.q6_latency,
            p.q9_latency,
        );
    }
}

/// Prints the shard-scaling tables, one per remote-warehouse mix.
pub fn print_all() {
    println!("== Shard scaling: aggregate tpmC and scatter-gather latency ==");
    println!("(small population, 8 warehouses, 400 routed txns per point)");
    print_table(RemoteMix::Uniform, "uniform (worst case)");
    print_table(RemoteMix::TPCC, "TPC-C 1% NewOrder / 15% Payment");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_throughput_scales_with_shards() {
        let points = sweep(&[1, 4], 120, 16, RemoteMix::Uniform);
        assert_eq!(points.len(), 2);
        let (one, four) = (points[0], points[1]);
        assert_eq!(one.shards, 1);
        assert!(one.committed > 0 && four.committed > 0);
        // Perfectly-partitioned load on 4 engines must beat 1 engine by
        // a clear margin (4× minus skew; accept > 2×).
        assert!(
            four.local_tpmc > one.local_tpmc * 2.0,
            "local tpmC {} vs {}",
            four.local_tpmc,
            one.local_tpmc
        );
        // A single shard sees no cross-shard traffic; four shards must.
        assert_eq!(one.cross_shard_fraction, 0.0);
        assert!(four.cross_shard_fraction > 0.5);
    }

    /// The TPC-C remote rates cut cross-shard coordination by an order
    /// of magnitude against the uniform worst case.
    #[test]
    fn tpcc_mix_coordinates_far_less_than_uniform() {
        let uniform = sweep(&[4], 150, 16, RemoteMix::Uniform);
        let tpcc = sweep(&[4], 150, 16, RemoteMix::TPCC);
        assert!(
            tpcc[0].cross_shard_fraction < uniform[0].cross_shard_fraction * 0.5,
            "TPC-C {} vs uniform {}",
            tpcc[0].cross_shard_fraction,
            uniform[0].cross_shard_fraction
        );
        // ~48.9% of txns are Payments at 15% remote, plus NewOrders with
        // ≥5 lines at 1%: expect a low-but-nonzero cross-shard rate.
        assert!(tpcc[0].cross_shard_fraction > 0.0);
        assert!(tpcc[0].cross_shard_fraction < 0.35);
    }
}
