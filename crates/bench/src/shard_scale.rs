//! Shard-scaling experiment: aggregate OLTP throughput (tpmC),
//! two-phase-commit cost, coordinator scheduling (serial barrier
//! flushes vs conflict-aware waves), and scatter-gather query latency
//! as the deployment grows from 1 to N warehouse-partitioned shards
//! over one fixed global population.
//!
//! Per point, the same routed global stream runs under **both**
//! coordinator modes:
//!
//! * **serial** — the oracle: local transactions on concurrent per-shard
//!   queues, every cross-shard transaction behind a barrier flush with
//!   its 2PC rounds delivered one at a time;
//! * **pipelined** — conflict-aware wave scheduling
//!   ([`pushtap_shard::CoordinatorMode::Pipelined`]): non-conflicting
//!   transactions (local *and* cross-shard) execute concurrently and a
//!   wave's 2PC message rounds overlap in flight.
//!
//! A third, perfectly-partitionable **local** load bounds the no-
//! coordination upper limit. The interesting gaps: local vs routed is
//! the price of cross-shard atomic commitment; serial vs pipelined is
//! how much of that price a conflict-aware schedule claws back — the
//! wave stats (count, width, overlap ratio, barrier flushes avoided)
//! say *why*. The sweep covers three [`RemoteMix`]es: fully local (0 %
//! remote — 2PC never fires), TPC-C's specified 1 %/15 % remote
//! probabilities, and the uniform draw (≈ (k−1)/k of touches remote at
//! k shards — a worst case).
//!
//! Every routed batch runs with the per-shard effect WAL enabled
//! ([`pushtap_shard::ShardedHtap::enable_wal`]), so each point also
//! reports the durability cost: effect-log appends/forces/bytes, the
//! coordinator decision log's appends/syncs, and **fsync-per-txn** —
//! group commit's acceptance number, which one barrier per wave keeps
//! below 1.0 under the pipelined coordinator while the serial
//! bucket-at-a-time cadence pays several.
//!
//! `--json` (on the `shard_scale` and `all_figures` binaries) writes
//! the full sweep to `BENCH_shard_scale.json` so the perf trajectory is
//! machine-readable across PRs.

use std::fmt::Write as _;
use std::sync::Arc;

use pushtap_chbench::RemoteMix;
use pushtap_olap::Query;
use pushtap_pim::Ps;
use pushtap_sanitizer::ShadowSanitizer;
use pushtap_shard::{CoordinatorMode, ShardConfig, ShardedHtap};
use pushtap_trace::{chrome, fmt_ps, two_pc_overlap_peak, LatencyStats, MemSink};

/// One coordinator mode's outcome for the routed stream of one point.
#[derive(Debug, Clone, Copy)]
pub struct ModePoint {
    /// Aggregate tpmC of the routed global stream.
    pub routed_tpmc: f64,
    /// Share of deployment busy time spent on 2PC message rounds
    /// (critical-path based — never exceeds 1.0 under overlap).
    pub two_pc_time_share: f64,
    /// Sequential-delivery ledger of 2PC message latency.
    pub two_pc_time: Ps,
    /// Coordinator latency that actually landed on the shards' clocks:
    /// 2PC message rounds (equal to the ledger under serial delivery;
    /// smaller under waves) plus group-commit force barriers
    /// ([`ModePoint::wal_force_time`]).
    pub critical_path_time: Ps,
    /// Barrier flushes (serial: one per cross-shard txn; pipelined: 0).
    pub barrier_flushes: u64,
    /// Waves scheduled (pipelined only).
    pub waves: u64,
    /// Transactions in the largest wave.
    pub max_wave: u64,
    /// Fraction of cross-shard 2PCs overlapped with another of their
    /// wave.
    pub overlap_ratio: f64,
    /// Prepared scopes aborted by coordinator decisions (participant
    /// `DeltaFull` votes).
    pub participant_aborts: u64,
    /// Realised parallel speedup of the routed batch (≤ shards).
    pub parallel_efficiency: f64,
    /// End-to-end commit-latency distribution of the routed batch
    /// (p50/p90/p99/p999/max/mean in picoseconds), merged across shards.
    pub commit_latency: LatencyStats,
    /// Effect records appended to the per-shard WALs.
    pub wal_appends: u64,
    /// Group-commit force barriers across the per-shard effect logs.
    pub wal_forces: u64,
    /// Framed bytes appended to the per-shard effect logs.
    pub wal_bytes: u64,
    /// Force-barrier latency charged to the shards' critical paths.
    pub wal_force_time: Ps,
    /// Commit decisions appended to the coordinator decision log.
    pub decision_appends: u64,
    /// Decision-log syncs (≤ appends — waves amortize).
    pub decision_forces: u64,
    /// Durable syncs per committed transaction (effect-log forces plus
    /// decision syncs over commits) — group commit drives this below
    /// 1.0 under waves.
    pub fsync_per_txn: f64,
}

/// One row of the shard-scaling table: both coordinator modes over the
/// same routed stream, plus the local upper bound and query latencies.
#[derive(Debug, Clone, Copy)]
pub struct ShardPoint {
    /// Shard count.
    pub shards: u32,
    /// Transactions committed (routed batches of both modes + local).
    pub committed: u64,
    /// Aggregate tpmC of perfectly-partitioned local streams.
    pub local_tpmc: f64,
    /// Fraction of routed transactions touching a remote shard (each
    /// runs as a two-phase commit).
    pub cross_shard_fraction: f64,
    /// Effects applied on non-home shards during the routed batch.
    pub forwarded_effects: u64,
    /// Two-phase-commit message rounds charged during the routed batch
    /// (identical across modes — the ledger is schedule-independent).
    pub commit_rounds: u64,
    /// The serial (barrier-flush) coordinator's outcome.
    pub serial: ModePoint,
    /// The pipelined (wave-scheduling) coordinator's outcome.
    pub pipelined: ModePoint,
    /// End-to-end scatter-gather Q1 latency.
    pub q1_latency: Ps,
    /// End-to-end scatter-gather Q6 latency.
    pub q6_latency: Ps,
    /// End-to-end scatter-gather Q9 latency.
    pub q9_latency: Ps,
}

fn run_mode(
    shards: u32,
    txns: u64,
    cores: u32,
    mix: RemoteMix,
    mode: CoordinatorMode,
) -> (ShardedHtap, pushtap_shard::ShardOltpReport, ModePoint) {
    let mut service =
        ShardedHtap::new(ShardConfig::small(shards).with_mode(mode)).expect("build shards");
    let _wal = service.enable_wal();
    let warehouses = service.map().warehouses();
    let mut gen = service.global_txn_gen(42).with_remote_mix(mix, warehouses);
    let routed = service.run_txns(&mut gen, txns);
    let point = ModePoint {
        routed_tpmc: routed.tpmc(cores),
        two_pc_time_share: routed.two_pc_time_share(),
        two_pc_time: routed.two_pc_time(),
        critical_path_time: routed.critical_path_time(),
        barrier_flushes: routed.coord.barrier_flushes,
        waves: routed.coord.waves,
        max_wave: routed.coord.max_wave,
        overlap_ratio: routed.overlap_ratio(),
        participant_aborts: routed.participant_aborts(),
        parallel_efficiency: routed.parallel_efficiency(),
        commit_latency: routed.commit_latency().stats(),
        wal_appends: routed.wal_appends(),
        wal_forces: routed.wal_forces(),
        wal_bytes: routed.wal_bytes(),
        wal_force_time: routed.wal_force_time(),
        decision_appends: routed.coord.decision_appends,
        decision_forces: routed.coord.decision_forces,
        fsync_per_txn: routed.fsync_per_txn(),
    };
    (service, routed, point)
}

/// Runs the sweep under the given remote-warehouse mix: `txns` routed
/// transactions under each coordinator mode (and the same count again
/// as local streams) per shard count, then one scatter-gather pass of
/// each query on the pipelined deployment.
pub fn sweep(shard_counts: &[u32], txns: u64, cores: u32, mix: RemoteMix) -> Vec<ShardPoint> {
    shard_counts
        .iter()
        .map(|&shards| {
            let (_, _, serial) = run_mode(shards, txns, cores, mix, CoordinatorMode::Serial);
            let (mut service, routed, pipelined) =
                run_mode(shards, txns, cores, mix, CoordinatorMode::Pipelined);
            let local = service.run_local_txns(43, txns / shards as u64);
            let q1 = service.run_query(Query::Q1);
            let q6 = service.run_query(Query::Q6);
            let q9 = service.run_query(Query::Q9);
            ShardPoint {
                shards,
                committed: 2 * routed.committed() + local.committed(),
                local_tpmc: local.tpmc(cores),
                cross_shard_fraction: routed.remote.cross_shard_fraction(),
                forwarded_effects: routed.forwarded_effects(),
                commit_rounds: routed.commit_rounds(),
                serial,
                pipelined,
                q1_latency: q1.total(),
                q6_latency: q6.total(),
                q9_latency: q9.total(),
            }
        })
        .collect()
}

const MIXES: [(RemoteMix, &str, &str); 3] = [
    (
        RemoteMix::LOCAL,
        "local",
        "warehouse-local (0% remote, no 2PC)",
    ),
    (RemoteMix::TPCC, "tpcc", "TPC-C 1% NewOrder / 15% Payment"),
    (RemoteMix::Uniform, "uniform", "uniform (worst case)"),
];

fn print_table(label: &str, points: &[ShardPoint]) {
    println!("-- remote-warehouse mix: {label} --");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>8} {:>8} {:>6} {:>5} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10} {:>10} {:>10}",
        "shards",
        "serial tpmC",
        "pipel. tpmC",
        "local tpmC",
        "x-shard",
        "flushes",
        "waves",
        "maxw",
        "overlap",
        "2pc(ser)",
        "2pc(pip)",
        "fs/tx(ser)",
        "fs/tx(pip)",
        "p99(ser)",
        "p50(pip)",
        "p99(pip)",
        "Q1",
        "Q6",
        "Q9"
    );
    for p in points {
        println!(
            "{:>6} {:>12.0} {:>12.0} {:>12.0} {:>7.1}% {:>8} {:>6} {:>5} {:>7.1}% {:>8.2}% {:>8.2}% {:>9.3} {:>9.3} {:>9} {:>9} {:>9} {:>10} {:>10} {:>10}",
            p.shards,
            p.serial.routed_tpmc,
            p.pipelined.routed_tpmc,
            p.local_tpmc,
            p.cross_shard_fraction * 100.0,
            p.serial.barrier_flushes,
            p.pipelined.waves,
            p.pipelined.max_wave,
            p.pipelined.overlap_ratio * 100.0,
            p.serial.two_pc_time_share * 100.0,
            p.pipelined.two_pc_time_share * 100.0,
            p.serial.fsync_per_txn,
            p.pipelined.fsync_per_txn,
            fmt_ps(p.serial.commit_latency.p99),
            fmt_ps(p.pipelined.commit_latency.p50),
            fmt_ps(p.pipelined.commit_latency.p99),
            p.q1_latency,
            p.q6_latency,
            p.q9_latency,
        );
    }
}

/// Runs the full sweep once: every mix × the given shard counts × both
/// coordinator modes. One entry per mix: (json key, table label,
/// points).
fn sweep_all(
    shard_counts: &[u32],
    txns: u64,
    cores: u32,
) -> Vec<(&'static str, &'static str, Vec<ShardPoint>)> {
    MIXES
        .iter()
        .map(|&(mix, key, label)| (key, label, sweep(shard_counts, txns, cores, mix)))
        .collect()
}

fn print_header() {
    println!("== Shard scaling: tpmC (serial vs pipelined coordinator), 2PC cost, waves, scatter-gather latency ==");
    println!("(small population, 8 warehouses, 400 routed txns per point per mode)");
}

/// The sanitizer-overhead outcome of one armed-vs-unarmed pair.
#[derive(Debug, Clone, Copy)]
pub struct SanitizerOverhead {
    /// Routed tpmC with the default [`pushtap_sanitizer::NullSanitizer`].
    pub baseline_tpmc: f64,
    /// Routed tpmC with an armed [`ShadowSanitizer`] watching every
    /// access and scope.
    pub armed_tpmc: f64,
    /// Accesses the armed tracker checked against declared keysets.
    pub checked_accesses: u64,
    /// Scopes (prepare/commit pairs) the armed tracker followed.
    pub scopes_tracked: u64,
}

impl SanitizerOverhead {
    /// Simulated-throughput overhead of arming, in percent. The hooks
    /// charge zero simulated time, so this is 0.0 by construction —
    /// the row exists so a future hook that *does* perturb the clock
    /// is caught as a regression, not discovered in a paper figure.
    pub fn overhead_pct(&self) -> f64 {
        (self.baseline_tpmc - self.armed_tpmc) / self.baseline_tpmc * 100.0
    }
}

/// Runs the same pipelined uniform-mix point twice — NullSanitizer vs
/// an armed [`ShadowSanitizer`] — and reports the simulated-throughput
/// delta plus what the tracker checked. Panics if the armed run is not
/// violation-free: the scaling harness doubles as a soundness gate.
pub fn sanitizer_overhead(shards: u32, txns: u64, cores: u32) -> SanitizerOverhead {
    let mix = RemoteMix::Uniform;
    let (_, baseline, _) = run_mode(shards, txns, cores, mix, CoordinatorMode::Pipelined);
    let mut service =
        ShardedHtap::new(ShardConfig::small(shards).with_mode(CoordinatorMode::Pipelined))
            .expect("build shards");
    let san = Arc::new(ShadowSanitizer::new());
    service.set_sanitizer(san.clone());
    let _wal = service.enable_wal();
    let warehouses = service.map().warehouses();
    let mut gen = service.global_txn_gen(42).with_remote_mix(mix, warehouses);
    let armed = service.run_txns(&mut gen, txns);
    san.assert_clean("shard_scale armed sweep");
    SanitizerOverhead {
        baseline_tpmc: baseline.tpmc(cores),
        armed_tpmc: armed.tpmc(cores),
        checked_accesses: san.checked_accesses(),
        scopes_tracked: san.scopes_tracked(),
    }
}

fn print_sanitizer_overhead() {
    let o = sanitizer_overhead(4, 400, 16);
    println!("-- sanitizer overhead (pipelined, uniform mix, 4 shards) --");
    println!(
        "{:>12} {:>12} {:>9} {:>10} {:>8}",
        "base tpmC", "armed tpmC", "overhead", "accesses", "scopes"
    );
    println!(
        "{:>12.0} {:>12.0} {:>8.1}% {:>10} {:>8}",
        o.baseline_tpmc,
        o.armed_tpmc,
        o.overhead_pct(),
        o.checked_accesses,
        o.scopes_tracked
    );
}

/// Prints the shard-scaling tables, one per remote-warehouse mix.
pub fn print_all() {
    print_header();
    for (_, label, points) in sweep_all(&[1, 2, 4, 8], 400, 16) {
        print_table(label, &points);
    }
    print_sanitizer_overhead();
}

/// Prints the shard-scaling tables *and* writes `BENCH_shard_scale.json`
/// from the same single sweep (the sweep is the expensive part — it
/// must not run twice).
pub fn print_and_write_json() -> std::io::Result<()> {
    print_header();
    let all = sweep_all(&[1, 2, 4, 8], 400, 16);
    for (_, label, points) in &all {
        print_table(label, points);
    }
    print_sanitizer_overhead();
    let path = "BENCH_shard_scale.json";
    std::fs::write(path, render_json(&all))?;
    println!("wrote {path}");
    Ok(())
}

fn json_mode(out: &mut String, point: &ModePoint) {
    let _ = write!(
        out,
        "{{\"routed_tpmc\":{:.1},\"two_pc_time_share\":{:.6},\"two_pc_time_ps\":{},\
         \"critical_path_time_ps\":{},\"barrier_flushes\":{},\"waves\":{},\"max_wave\":{},\
         \"overlap_ratio\":{:.6},\"participant_aborts\":{},\"parallel_efficiency\":{:.4},\
         \"commit_p50_ps\":{},\"commit_p99_ps\":{},\"commit_p999_ps\":{},\
         \"commit_mean_ps\":{},\"commit_max_ps\":{},\
         \"wal_appends\":{},\"wal_forces\":{},\"wal_bytes\":{},\"wal_force_time_ps\":{},\
         \"decision_appends\":{},\"decision_forces\":{},\"fsync_per_txn\":{:.6}}}",
        point.routed_tpmc,
        point.two_pc_time_share,
        point.two_pc_time.ps(),
        point.critical_path_time.ps(),
        point.barrier_flushes,
        point.waves,
        point.max_wave,
        point.overlap_ratio,
        point.participant_aborts,
        point.parallel_efficiency,
        point.commit_latency.p50,
        point.commit_latency.p99,
        point.commit_latency.p999,
        point.commit_latency.mean,
        point.commit_latency.max,
        point.wal_appends,
        point.wal_forces,
        point.wal_bytes,
        point.wal_force_time.ps(),
        point.decision_appends,
        point.decision_forces,
        point.fsync_per_txn,
    );
}

/// Renders a completed sweep (all mixes × shard counts × both
/// coordinator modes) as a JSON document.
fn render_json(all: &[(&'static str, &'static str, Vec<ShardPoint>)]) -> String {
    let mut out = String::from("{\n  \"bench\": \"shard_scale\",\n  \"points\": [\n");
    let mut first = true;
    for (mix_key, _, points) in all {
        for p in points {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "    {{\"mix\":\"{mix_key}\",\"shards\":{},\"committed\":{},\
                 \"local_tpmc\":{:.1},\"cross_shard_fraction\":{:.6},\
                 \"forwarded_effects\":{},\"commit_rounds\":{},\
                 \"q1_ps\":{},\"q6_ps\":{},\"q9_ps\":{},\"serial\":",
                p.shards,
                p.committed,
                p.local_tpmc,
                p.cross_shard_fraction,
                p.forwarded_effects,
                p.commit_rounds,
                p.q1_latency.ps(),
                p.q6_latency.ps(),
                p.q9_latency.ps(),
            );
            json_mode(&mut out, &p.serial);
            out.push_str(",\"pipelined\":");
            json_mode(&mut out, &p.pipelined);
            out.push('}');
        }
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Runs the sweep at the given scale and renders it as JSON — the
/// machine-readable form `BENCH_shard_scale.json` holds (throughput,
/// 2PC time share, wave/overlap stats per mix × shard count ×
/// coordinator mode).
pub fn json_report(shard_counts: &[u32], txns: u64, cores: u32) -> String {
    render_json(&sweep_all(shard_counts, txns, cores))
}

/// Collects one traced pipelined run (uniform remote mix — the
/// 2PC-heaviest load) and renders it as a Chrome-trace JSON document:
/// one process per shard, lanes for engine work, coordinator protocol
/// phases, defragmentation stalls, and queue waits. The document is
/// self-validated before it is returned (well-formed JSON, monotone
/// timestamps per track, matched async pairs), so a caller can write it
/// straight to disk and load it in Perfetto / `chrome://tracing`.
///
/// Returns the rendered document plus the peak number of two-phase
/// commits open concurrently in the busiest wave.
///
/// # Panics
///
/// Panics if the rendered document fails its own validator — that is a
/// bug in the span emission, never an input-dependent condition.
pub fn render_trace(shards: u32, txns: u64) -> (String, u64, usize) {
    let mut service =
        ShardedHtap::new(ShardConfig::small(shards).with_mode(CoordinatorMode::Pipelined))
            .expect("build shards");
    let sink = Arc::new(MemSink::default());
    service.set_trace_sink(sink.clone());
    let warehouses = service.map().warehouses();
    let mut gen = service
        .global_txn_gen(42)
        .with_remote_mix(RemoteMix::Uniform, warehouses);
    service.run_txns(&mut gen, txns);
    let spans = sink.take();
    let (wave, peak) = two_pc_overlap_peak(&spans);
    let doc = chrome::render(&spans);
    if let Err(e) = chrome::validate(&doc) {
        panic!("rendered trace failed validation: {e}");
    }
    (doc, wave, peak)
}

/// Runs a traced pipelined batch and writes the Chrome-trace document
/// to `path` (see [`render_trace`]).
///
/// # Errors
///
/// Propagates the file write error.
pub fn write_trace(path: &str, shards: u32, txns: u64) -> std::io::Result<()> {
    let (doc, wave, peak) = render_trace(shards, txns);
    std::fs::write(path, &doc)?;
    println!(
        "wrote {path} ({} bytes): {shards}-shard pipelined uniform-mix timeline, \
         peak {peak} concurrent 2PCs in wave {wave}",
        doc.len()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_throughput_scales_with_shards() {
        let points = sweep(&[1, 4], 120, 16, RemoteMix::Uniform);
        assert_eq!(points.len(), 2);
        let (one, four) = (points[0], points[1]);
        assert_eq!(one.shards, 1);
        assert!(one.committed > 0 && four.committed > 0);
        // Perfectly-partitioned load on 4 engines must beat 1 engine by
        // a clear margin (4× minus skew; accept > 2×).
        assert!(
            four.local_tpmc > one.local_tpmc * 2.0,
            "local tpmC {} vs {}",
            four.local_tpmc,
            one.local_tpmc
        );
        // A single shard sees no cross-shard traffic and runs no 2PC;
        // four shards must do both.
        assert_eq!(one.cross_shard_fraction, 0.0);
        assert_eq!(one.forwarded_effects, 0);
        assert_eq!(one.commit_rounds, 0);
        assert!(four.cross_shard_fraction > 0.5);
        assert!(four.forwarded_effects > 0);
        assert!(four.commit_rounds > 0);
        assert!(four.serial.two_pc_time_share > 0.0);
        assert!(four.pipelined.two_pc_time_share > 0.0);
    }

    /// The TPC-C remote rates cut cross-shard coordination by an order
    /// of magnitude against the uniform worst case, and the fully local
    /// mix never fires 2PC at all.
    #[test]
    fn remote_mixes_order_two_pc_cost() {
        let local = sweep(&[4], 150, 16, RemoteMix::LOCAL);
        let tpcc = sweep(&[4], 150, 16, RemoteMix::TPCC);
        let uniform = sweep(&[4], 150, 16, RemoteMix::Uniform);
        assert_eq!(local[0].cross_shard_fraction, 0.0);
        assert_eq!(local[0].forwarded_effects, 0);
        assert_eq!(local[0].serial.two_pc_time_share, 0.0);
        assert_eq!(local[0].pipelined.two_pc_time_share, 0.0);
        assert!(
            tpcc[0].cross_shard_fraction < uniform[0].cross_shard_fraction * 0.5,
            "TPC-C {} vs uniform {}",
            tpcc[0].cross_shard_fraction,
            uniform[0].cross_shard_fraction
        );
        // ~48.9% of txns are Payments at 15% remote, plus NewOrders with
        // ≥5 lines at 1%: expect a low-but-nonzero cross-shard rate.
        assert!(tpcc[0].cross_shard_fraction > 0.0);
        assert!(tpcc[0].cross_shard_fraction < 0.35);
        assert!(tpcc[0].forwarded_effects > 0);
        assert!(tpcc[0].forwarded_effects < uniform[0].forwarded_effects);
        assert!(tpcc[0].commit_rounds < uniform[0].commit_rounds);
    }

    /// The refactor's acceptance criterion: at ≥ 4 shards under the
    /// cross-shard-heavy mixes, the pipelined coordinator strictly
    /// reduces barrier flushes, reports positive 2PC overlap, and pays
    /// no more clock for its message rounds than the serial oracle.
    #[test]
    fn pipelined_reduces_flushes_and_overlaps() {
        for mix in [RemoteMix::TPCC, RemoteMix::Uniform] {
            for p in sweep(&[4, 8], 150, 16, mix) {
                assert!(p.serial.barrier_flushes > 0, "{} shards", p.shards);
                assert!(
                    p.pipelined.barrier_flushes < p.serial.barrier_flushes,
                    "{} shards: flushes must strictly reduce",
                    p.shards
                );
                assert!(p.pipelined.overlap_ratio > 0.0, "{} shards", p.shards);
                assert!(p.pipelined.waves > 0 && p.pipelined.max_wave > 1);
                // Compare the message-round component alone: with the
                // WAL on, the critical path also carries group-commit
                // force time, whose cadence (buckets vs waves) is a
                // different axis than 2PC overlap.
                let ser_rounds = p
                    .serial
                    .critical_path_time
                    .saturating_sub(p.serial.wal_force_time);
                let pip_rounds = p
                    .pipelined
                    .critical_path_time
                    .saturating_sub(p.pipelined.wal_force_time);
                assert!(pip_rounds <= ser_rounds);
                assert!(p.serial.two_pc_time_share <= 1.0);
                assert!(p.pipelined.two_pc_time_share <= 1.0);
            }
        }
    }

    /// The JSON report covers every mix × shard count with both modes
    /// and parsable numbers.
    #[test]
    fn json_report_lists_every_point() {
        let json = json_report(&[1, 2], 60, 16);
        assert!(json.contains("\"bench\": \"shard_scale\""));
        for mix in ["local", "tpcc", "uniform"] {
            assert!(
                json.contains(&format!("\"mix\":\"{mix}\"")),
                "{mix} missing"
            );
        }
        assert_eq!(json.matches("\"serial\":").count(), 6);
        assert_eq!(json.matches("\"pipelined\":").count(), 6);
        assert_eq!(json.matches("\"waves\":").count(), 12);
        // Every mode entry carries its commit-latency percentiles.
        assert_eq!(json.matches("\"commit_p50_ps\":").count(), 12);
        assert_eq!(json.matches("\"commit_p99_ps\":").count(), 12);
        assert_eq!(json.matches("\"commit_p999_ps\":").count(), 12);
        // ... and its durability columns.
        assert_eq!(json.matches("\"wal_forces\":").count(), 12);
        assert_eq!(json.matches("\"decision_forces\":").count(), 12);
        assert_eq!(json.matches("\"fsync_per_txn\":").count(), 12);
        // Balanced braces — cheap well-formedness check without a
        // JSON parser in the dependency-free build.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    /// The durability acceptance number: every sweep runs with the
    /// effect WAL on, and group commit keeps the pipelined
    /// coordinator's durable syncs per committed transaction below one
    /// at scale — one force barrier amortized across each wave — while
    /// the serial coordinator's bucket-at-a-time cadence pays several.
    /// A fully warehouse-local mix never touches the decision log.
    #[test]
    fn group_commit_amortizes_under_waves() {
        for p in sweep(&[4, 8], 150, 16, RemoteMix::Uniform) {
            assert!(p.serial.wal_appends > 0 && p.pipelined.wal_appends > 0);
            assert!(p.serial.wal_forces > 0 && p.pipelined.wal_forces > 0);
            assert!(p.pipelined.wal_bytes > 0);
            assert!(
                p.pipelined.fsync_per_txn < 1.0,
                "{} shards: pipelined fsync/txn {:.3} must stay below 1",
                p.shards,
                p.pipelined.fsync_per_txn
            );
            assert!(
                p.pipelined.fsync_per_txn < p.serial.fsync_per_txn,
                "{} shards: waves must amortize better ({:.3} vs {:.3})",
                p.shards,
                p.pipelined.fsync_per_txn,
                p.serial.fsync_per_txn
            );
            // Presumed abort: one durable decision per cross-shard
            // commit, synced at most once per decision.
            assert!(p.serial.decision_appends > 0);
            assert_eq!(p.serial.decision_appends, p.pipelined.decision_appends);
            assert!(p.pipelined.decision_forces <= p.pipelined.decision_appends);
            assert!(p.pipelined.wal_force_time > Ps::ZERO);
        }
        let local = sweep(&[4], 100, 16, RemoteMix::LOCAL);
        assert_eq!(local[0].serial.decision_appends, 0);
        assert_eq!(local[0].pipelined.decision_appends, 0);
        assert!(local[0].pipelined.wal_appends > 0);
    }

    /// Commit-latency percentiles are populated and ordered on every
    /// mode of a routed sweep point.
    #[test]
    fn sweep_reports_ordered_commit_percentiles() {
        let points = sweep(&[2], 80, 16, RemoteMix::Uniform);
        for mode in [&points[0].serial, &points[0].pipelined] {
            let s = mode.commit_latency;
            assert_eq!(s.count, 80, "one sample per committed txn");
            assert!(s.p50 > 0);
            assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.p999);
            assert!(s.p999 <= s.max);
            assert!(s.mean > 0);
        }
    }

    /// Arming the sanitizer costs zero *simulated* time: the armed
    /// deployment reports the exact tpmC the unarmed one does, while
    /// the tracker demonstrably checked the batch's row traffic.
    #[test]
    fn sanitizer_overhead_is_zero_simulated() {
        let o = sanitizer_overhead(2, 120, 16);
        assert_eq!(
            o.baseline_tpmc, o.armed_tpmc,
            "hooks must not perturb the simulated clock"
        );
        assert_eq!(o.overhead_pct(), 0.0);
        assert!(o.scopes_tracked >= 120, "every txn opens a scope");
        assert!(o.checked_accesses > o.scopes_tracked);
    }

    /// The rendered Chrome trace validates and shows genuinely
    /// overlapping two-phase commits under the pipelined coordinator.
    #[test]
    fn trace_renders_and_overlaps() {
        let (doc, _wave, peak) = render_trace(4, 120);
        let stats = chrome::validate(&doc).expect("trace must validate");
        assert!(stats.events > 0 && stats.complete > 0 && stats.instants > 0);
        assert!(stats.tracks >= 4, "one track per shard at minimum");
        assert!(
            peak >= 2,
            "uniform mix at 4 shards must overlap 2PCs (peak {peak})"
        );
    }
}
