//! Shard-scaling experiment: aggregate OLTP throughput (tpmC),
//! two-phase-commit cost, and scatter-gather query latency as the
//! deployment grows from 1 to N warehouse-partitioned shards over one
//! fixed global population.
//!
//! Two load shapes are measured:
//!
//! * **routed** — one global transaction stream routed by home
//!   warehouse; transactions whose NewOrder stock lines or Payment
//!   customers live on other shards run as coordinator-driven two-phase
//!   commits (effects forwarded to their owners, prepare/commit rounds
//!   charged per [`pushtap_shard::CommitConfig`]);
//! * **local** — per-shard warehouse-local streams (the perfectly
//!   partitionable upper bound).
//!
//! The interesting gap is between the two: it is the price of
//! cross-shard atomic commitment at these hop latencies, the scale-out
//! analogue of the paper's single-instance consistency costs. How wide
//! the gap is depends on the workload's remote-warehouse rate, so the
//! sweep covers three [`RemoteMix`]es: the fully local mix (0 % remote —
//! 2PC never fires), TPC-C's specified 1 % (NewOrder) / 15 % (Payment)
//! remote probabilities, and the uniform draw (≈ (k−1)/k of touches
//! remote at k shards — a worst case). The 2PC columns report the
//! cross-shard transaction fraction, the effects forwarded to remote
//! owners, and the share of deployment busy time spent on commit
//! rounds.

use pushtap_chbench::RemoteMix;
use pushtap_olap::Query;
use pushtap_pim::Ps;
use pushtap_shard::{ShardConfig, ShardedHtap};

/// One row of the shard-scaling table.
#[derive(Debug, Clone, Copy)]
pub struct ShardPoint {
    /// Shard count.
    pub shards: u32,
    /// Transactions committed (whole deployment).
    pub committed: u64,
    /// Aggregate tpmC of the routed global stream.
    pub routed_tpmc: f64,
    /// Aggregate tpmC of perfectly-partitioned local streams.
    pub local_tpmc: f64,
    /// Fraction of routed transactions touching a remote shard (each
    /// runs as a two-phase commit).
    pub cross_shard_fraction: f64,
    /// Effects applied on non-home shards on behalf of forwarded
    /// transactions during the routed batch.
    pub forwarded_effects: u64,
    /// Two-phase-commit message rounds charged during the routed batch.
    pub commit_rounds: u64,
    /// Share of the deployment's summed busy time spent on 2PC message
    /// rounds during the routed batch.
    pub two_pc_time_share: f64,
    /// Prepared scopes aborted by coordinator decisions (participant
    /// `DeltaFull` votes) during the routed batch.
    pub participant_aborts: u64,
    /// Realised parallel speedup of the routed batch (≤ shards).
    pub parallel_efficiency: f64,
    /// End-to-end scatter-gather Q6 latency.
    pub q6_latency: Ps,
    /// End-to-end scatter-gather Q1 latency.
    pub q1_latency: Ps,
    /// End-to-end scatter-gather Q9 latency.
    pub q9_latency: Ps,
}

/// Runs the sweep under the given remote-warehouse mix: `txns` routed
/// transactions (and the same count again as local streams) per shard
/// count, then one scatter-gather pass of each query.
pub fn sweep(shard_counts: &[u32], txns: u64, cores: u32, mix: RemoteMix) -> Vec<ShardPoint> {
    shard_counts
        .iter()
        .map(|&shards| {
            let mut service = ShardedHtap::new(ShardConfig::small(shards)).expect("build shards");
            let warehouses = service.map().warehouses();
            let mut gen = service.global_txn_gen(42).with_remote_mix(mix, warehouses);
            let routed = service.run_txns(&mut gen, txns);
            let local = service.run_local_txns(43, txns / shards as u64);
            let q1 = service.run_query(Query::Q1);
            let q6 = service.run_query(Query::Q6);
            let q9 = service.run_query(Query::Q9);
            ShardPoint {
                shards,
                committed: routed.committed() + local.committed(),
                routed_tpmc: routed.tpmc(cores),
                local_tpmc: local.tpmc(cores),
                cross_shard_fraction: routed.remote.cross_shard_fraction(),
                forwarded_effects: routed.forwarded_effects(),
                commit_rounds: routed.commit_rounds(),
                two_pc_time_share: routed.two_pc_time_share(),
                participant_aborts: routed.participant_aborts(),
                parallel_efficiency: routed.parallel_efficiency(),
                q6_latency: q6.total(),
                q1_latency: q1.total(),
                q9_latency: q9.total(),
            }
        })
        .collect()
}

fn print_table(mix: RemoteMix, label: &str) {
    println!("-- remote-warehouse mix: {label} --");
    println!(
        "{:>6} {:>12} {:>12} {:>8} {:>9} {:>8} {:>9} {:>8} {:>8} {:>10} {:>10} {:>10}",
        "shards",
        "routed tpmC",
        "local tpmC",
        "x-shard",
        "fwd.eff",
        "rounds",
        "2pc time",
        "p.abort",
        "par.eff",
        "Q1",
        "Q6",
        "Q9"
    );
    for p in sweep(&[1, 2, 4, 8], 400, 16, mix) {
        println!(
            "{:>6} {:>12.0} {:>12.0} {:>7.1}% {:>9} {:>8} {:>8.2}% {:>8} {:>8.2} {:>10} {:>10} {:>10}",
            p.shards,
            p.routed_tpmc,
            p.local_tpmc,
            p.cross_shard_fraction * 100.0,
            p.forwarded_effects,
            p.commit_rounds,
            p.two_pc_time_share * 100.0,
            p.participant_aborts,
            p.parallel_efficiency,
            p.q1_latency,
            p.q6_latency,
            p.q9_latency,
        );
    }
}

/// Prints the shard-scaling tables, one per remote-warehouse mix.
pub fn print_all() {
    println!("== Shard scaling: aggregate tpmC, 2PC cost, scatter-gather latency ==");
    println!("(small population, 8 warehouses, 400 routed txns per point)");
    print_table(RemoteMix::LOCAL, "warehouse-local (0% remote, no 2PC)");
    print_table(RemoteMix::TPCC, "TPC-C 1% NewOrder / 15% Payment");
    print_table(RemoteMix::Uniform, "uniform (worst case)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_throughput_scales_with_shards() {
        let points = sweep(&[1, 4], 120, 16, RemoteMix::Uniform);
        assert_eq!(points.len(), 2);
        let (one, four) = (points[0], points[1]);
        assert_eq!(one.shards, 1);
        assert!(one.committed > 0 && four.committed > 0);
        // Perfectly-partitioned load on 4 engines must beat 1 engine by
        // a clear margin (4× minus skew; accept > 2×).
        assert!(
            four.local_tpmc > one.local_tpmc * 2.0,
            "local tpmC {} vs {}",
            four.local_tpmc,
            one.local_tpmc
        );
        // A single shard sees no cross-shard traffic and runs no 2PC;
        // four shards must do both.
        assert_eq!(one.cross_shard_fraction, 0.0);
        assert_eq!(one.forwarded_effects, 0);
        assert_eq!(one.commit_rounds, 0);
        assert!(four.cross_shard_fraction > 0.5);
        assert!(four.forwarded_effects > 0);
        assert!(four.commit_rounds > 0);
        assert!(four.two_pc_time_share > 0.0);
    }

    /// The TPC-C remote rates cut cross-shard coordination by an order
    /// of magnitude against the uniform worst case, and the fully local
    /// mix never fires 2PC at all.
    #[test]
    fn remote_mixes_order_two_pc_cost() {
        let local = sweep(&[4], 150, 16, RemoteMix::LOCAL);
        let tpcc = sweep(&[4], 150, 16, RemoteMix::TPCC);
        let uniform = sweep(&[4], 150, 16, RemoteMix::Uniform);
        assert_eq!(local[0].cross_shard_fraction, 0.0);
        assert_eq!(local[0].forwarded_effects, 0);
        assert_eq!(local[0].two_pc_time_share, 0.0);
        assert!(
            tpcc[0].cross_shard_fraction < uniform[0].cross_shard_fraction * 0.5,
            "TPC-C {} vs uniform {}",
            tpcc[0].cross_shard_fraction,
            uniform[0].cross_shard_fraction
        );
        // ~48.9% of txns are Payments at 15% remote, plus NewOrders with
        // ≥5 lines at 1%: expect a low-but-nonzero cross-shard rate.
        assert!(tpcc[0].cross_shard_fraction > 0.0);
        assert!(tpcc[0].cross_shard_fraction < 0.35);
        assert!(tpcc[0].forwarded_effects > 0);
        assert!(tpcc[0].forwarded_effects < uniform[0].forwarded_effects);
        assert!(tpcc[0].commit_rounds < uniform[0].commit_rounds);
    }
}
