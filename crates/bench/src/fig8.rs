//! Figure 8: unified-data-format analysis on CH-benCHmark.
//!
//! (a) CPU and PIM effective bandwidth across the threshold sweep;
//! (b) storage breakdown at the chosen threshold;
//! (c,d) achievable bandwidth under growing OLAP query subsets;
//! plus the §7.2 HTAPBench generality check.

use pushtap_chbench::{key_columns_upto, scan_weight, schema_with_keys, Table, ALL_TABLES};
use pushtap_format::{compact_layout, cpu_effective, storage_breakdown, TableSchema};

/// One point of the Fig. 8(a) sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdPoint {
    /// Bin-packing threshold.
    pub th: f64,
    /// Storage-weighted CPU effective bandwidth.
    pub cpu_eff: f64,
    /// Scan-weighted PIM effective bandwidth.
    pub pim_eff: f64,
}

fn keyed_schemas(queries: &[u8]) -> Vec<(Table, TableSchema)> {
    let keys = pushtap_chbench::key_columns_of(queries);
    ALL_TABLES
        .into_iter()
        .map(|t| {
            let k: Vec<&str> = keys.get(&t).cloned().unwrap_or_default();
            (t, schema_with_keys(t, &k))
        })
        .collect()
}

fn all_key_schemas() -> Vec<(Table, TableSchema)> {
    ALL_TABLES
        .into_iter()
        .map(|t| (t, t.schema().with_all_keys()))
        .collect()
}

/// Database-wide effective bandwidths for a key assignment at one
/// threshold. CPU effectiveness is weighted by table storage; PIM
/// effectiveness by (scan frequency × scanned bytes).
pub fn database_effectiveness(
    schemas: &[(Table, TableSchema)],
    queries: &[u8],
    th: f64,
    devices: u32,
) -> (f64, f64) {
    let mut cpu_num = 0.0;
    let mut cpu_den = 0.0;
    let mut pim_num = 0.0;
    let mut pim_den = 0.0;
    for (table, schema) in schemas {
        let layout = compact_layout(schema, devices, th).expect("layout");
        let rows = table.rows_full_scale() as f64;
        let weight = rows * schema.row_width() as f64;
        cpu_num += cpu_effective(&layout, 8) * weight;
        cpu_den += weight;
        for c in schema.key_indices() {
            let col = schema.column(c);
            let w = scan_weight(&col.name, queries) * rows * col.width as f64;
            if w > 0.0 {
                if let Some(eff) = layout.pim_scan_effectiveness(c) {
                    pim_num += eff * w;
                    pim_den += w;
                }
            }
        }
    }
    (
        cpu_num / cpu_den,
        if pim_den == 0.0 {
            1.0
        } else {
            pim_num / pim_den
        },
    )
}

/// Fig. 8(a): sweep th over `steps` points for the full 22-query key set.
pub fn threshold_sweep(steps: usize) -> Vec<ThresholdPoint> {
    let queries: Vec<u8> = (1..=22).collect();
    let schemas = keyed_schemas(&queries);
    (0..=steps)
        .map(|i| {
            let th = i as f64 / steps as f64;
            let (cpu_eff, pim_eff) = database_effectiveness(&schemas, &queries, th, 8);
            ThresholdPoint {
                th,
                cpu_eff,
                pim_eff,
            }
        })
        .collect()
}

/// Fig. 8(b): storage breakdown at `th`, weighted across tables.
pub fn storage_at(th: f64, delta_frac: f64) -> pushtap_format::StorageBreakdown {
    let queries: Vec<u8> = (1..=22).collect();
    let mut data = 0.0;
    let mut padding = 0.0;
    let mut snapshot = 0.0;
    let mut total = 0.0;
    for (table, schema) in keyed_schemas(&queries) {
        let layout = compact_layout(&schema, 8, th).expect("layout");
        let b = storage_breakdown(&layout, delta_frac);
        let bytes = table.rows_full_scale() as f64
            * (layout.padded_row_bytes() as f64 * (1.0 + delta_frac)
                + layout.devices() as f64 * (1.0 + delta_frac) / 8.0);
        data += b.data * bytes;
        padding += b.padding * bytes;
        snapshot += b.snapshot * bytes;
        total += bytes;
    }
    pushtap_format::StorageBreakdown {
        data: data / total,
        padding: padding / total,
        snapshot: snapshot / total,
    }
}

/// One bar of Fig. 8(c,d).
#[derive(Debug, Clone, PartialEq)]
pub struct SubsetPoint {
    /// Subset label ("Q1", "Q1-3", ..., "ALL").
    pub label: String,
    /// Number of key columns implied by the subset.
    pub key_columns: usize,
    /// Fig. 8(c): max CPU effectiveness s.t. PIM ≥ 70 % (at the minimum
    /// such th).
    pub cpu_given_pim70: f64,
    /// Fig. 8(d): max PIM effectiveness s.t. CPU ≥ 70 % (at the maximum
    /// such th; th = 0 when no threshold satisfies the constraint, as
    /// happens for "ALL" in the paper).
    pub pim_given_cpu70: f64,
}

/// Fig. 8(c,d): the subsets the paper uses.
pub fn subset_sweep() -> Vec<SubsetPoint> {
    let subsets: Vec<(String, Option<u8>)> = vec![
        ("Q1".into(), Some(1)),
        ("Q1-2".into(), Some(2)),
        ("Q1-3".into(), Some(3)),
        ("Q1-10".into(), Some(10)),
        ("Q1-22".into(), Some(22)),
        ("ALL".into(), None),
    ];
    subsets
        .into_iter()
        .map(|(label, upto)| {
            let (schemas, queries): (Vec<_>, Vec<u8>) = match upto {
                Some(n) => (
                    (keyed_schemas(&(1..=n).collect::<Vec<_>>())),
                    (1..=n).collect(),
                ),
                None => (all_key_schemas(), (1..=22).collect()),
            };
            let key_columns = match upto {
                Some(n) => key_columns_upto(n).values().map(Vec::len).sum(),
                None => schemas.iter().map(|(_, s)| s.len()).sum(),
            };
            let grid: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
            let points: Vec<(f64, f64, f64)> = grid
                .iter()
                .map(|&th| {
                    let (c, p) = database_effectiveness(&schemas, &queries, th, 8);
                    (th, c, p)
                })
                .collect();
            // (c): minimum th with PIM ≥ 70 %, report CPU there.
            let cpu_given_pim70 = points
                .iter()
                .find(|(_, _, p)| *p >= 0.70)
                .map(|(_, c, _)| *c)
                .unwrap_or_else(|| points.last().expect("grid").1);
            // (d): maximum th with CPU ≥ 70 %; fall back to th = 0.
            let pim_given_cpu70 = points
                .iter()
                .rev()
                .find(|(_, c, _)| *c >= 0.70)
                .map(|(_, _, p)| *p)
                .unwrap_or_else(|| points.first().expect("grid").2);
            SubsetPoint {
                label,
                key_columns,
                cpu_given_pim70,
                pim_given_cpu70,
            }
        })
        .collect()
}

/// §7.2 generality: HTAPBench-style workload at `th` (paper: 57 %/98 %
/// CPU/PIM at th = 0.55). Returns (cpu_eff, pim_eff).
pub fn htapbench_effectiveness(th: f64) -> (f64, f64) {
    use pushtap_chbench::htapbench;
    let tables = htapbench::tables();
    // Storage weights: sales is the fact table.
    let weights = [10_000_000.0, 100_000.0, 1_000_000.0, 1_000.0];
    let mut cpu_num = 0.0;
    let mut cpu_den = 0.0;
    let mut pim_num = 0.0;
    let mut pim_den = 0.0;
    let key_map = htapbench::key_columns();
    for (ti, schema) in tables.iter().enumerate() {
        let keys: Vec<&str> = key_map
            .iter()
            .find(|(i, _)| *i == ti)
            .map(|(_, k)| k.clone())
            .unwrap_or_default();
        let schema = schema.with_keys(&keys);
        let layout = compact_layout(&schema, 8, th).expect("layout");
        let w = weights[ti] * schema.row_width() as f64;
        cpu_num += cpu_effective(&layout, 8) * w;
        cpu_den += w;
        for c in schema.key_indices() {
            let col = schema.column(c);
            let sw = htapbench::scan_weight(&col.name) * weights[ti] * col.width as f64;
            if sw > 0.0 {
                if let Some(eff) = layout.pim_scan_effectiveness(c) {
                    pim_num += eff * sw;
                    pim_den += sw;
                }
            }
        }
    }
    (
        cpu_num / cpu_den,
        if pim_den == 0.0 {
            1.0
        } else {
            pim_num / pim_den
        },
    )
}

/// Prints the whole Figure 8 family.
pub fn print_all() {
    println!("== Fig. 8(a): effective bandwidth vs threshold ==");
    println!("{:<6} {:>8} {:>8}", "th", "CPU(%)", "PIM(%)");
    for p in threshold_sweep(10) {
        println!(
            "{:<6.2} {:>8.1} {:>8.1}",
            p.th,
            p.cpu_eff * 100.0,
            p.pim_eff * 100.0
        );
    }
    let b = storage_at(0.6, 0.25);
    println!("\n== Fig. 8(b): storage breakdown at th=0.6 ==");
    println!(
        "data {:.1}%  padding {:.1}%  snapshot {:.1}%",
        b.data * 100.0,
        b.padding * 100.0,
        b.snapshot * 100.0
    );
    println!("\n== Fig. 8(c,d): bandwidth under OLAP subsets ==");
    println!(
        "{:<7} {:>9} {:>16} {:>16}",
        "subset", "key-cols", "CPU|PIM>=70(%)", "PIM|CPU>=70(%)"
    );
    for p in subset_sweep() {
        println!(
            "{:<7} {:>9} {:>16.1} {:>16.1}",
            p.label,
            p.key_columns,
            p.cpu_given_pim70 * 100.0,
            p.pim_given_cpu70 * 100.0
        );
    }
    let (c, p) = htapbench_effectiveness(0.55);
    println!("\n== §7.2 generality: HTAPBench at th=0.55 ==");
    println!(
        "CPU {:.0}%  PIM {:.0}%  (paper: 57%/98%)",
        c * 100.0,
        p * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 8(a) trade-off: PIM effectiveness rises with th, CPU
    /// effectiveness falls; the curves cross.
    #[test]
    fn sweep_shows_the_tradeoff() {
        let pts = threshold_sweep(10);
        assert_eq!(pts.len(), 11);
        let first = pts.first().unwrap();
        let last = pts.last().unwrap();
        assert!(last.pim_eff > first.pim_eff + 0.1, "PIM must rise");
        assert!(first.cpu_eff > last.cpu_eff, "CPU must fall");
        // At th = 1 every key column is fully effective.
        assert!(last.pim_eff > 0.95, "PIM at th=1: {}", last.pim_eff);
    }

    /// At the paper's chosen th = 0.6, PIM effectiveness must be high
    /// (paper: 97.4 %) while CPU stays serviceable (paper: 59.8 %).
    #[test]
    fn chosen_threshold_balances() {
        let queries: Vec<u8> = (1..=22).collect();
        let schemas = keyed_schemas(&queries);
        let (cpu, pim) = database_effectiveness(&schemas, &queries, 0.6, 8);
        assert!(pim > 0.85, "PIM at th=0.6: {pim}");
        assert!(cpu > 0.35, "CPU at th=0.6: {cpu}");
    }

    /// Fig. 8(b): padding is negligible and the snapshot bitmap costs only
    /// a few percent (paper: 0.8 % and 2.3 %).
    #[test]
    fn storage_breakdown_shape() {
        let b = storage_at(0.6, 0.25);
        assert!(b.data > 0.90, "data {}", b.data);
        assert!(b.padding < 0.06, "padding {}", b.padding);
        assert!(b.snapshot < 0.06, "snapshot {}", b.snapshot);
    }

    /// Fig. 8(c,d): more key columns make both constraints harder (the
    /// ends of the subset sweep are ordered as in the paper).
    #[test]
    fn subsets_degrade_monotonically_at_the_ends() {
        let pts = subset_sweep();
        assert_eq!(pts.len(), 6);
        let q1 = &pts[0];
        let all = &pts[5];
        assert!(q1.key_columns < all.key_columns);
        assert!(q1.cpu_given_pim70 >= all.cpu_given_pim70);
        assert!(q1.pim_given_cpu70 >= all.pim_given_cpu70);
        // Q1 alone: tiny key set, PIM can be fully effective.
        assert!(q1.pim_given_cpu70 > 0.9 || q1.cpu_given_pim70 > 0.5);
    }

    /// HTAPBench generality: high PIM effectiveness at moderate CPU cost
    /// near the paper's th = 0.55 operating point.
    #[test]
    fn htapbench_generalises() {
        let (cpu, pim) = htapbench_effectiveness(0.55);
        assert!(pim > 0.85, "PIM {pim}");
        assert!(cpu > 0.30, "CPU {cpu}");
    }
}
