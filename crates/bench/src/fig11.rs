//! Figure 11: defragmentation economics.
//!
//! (a) defragmentation overhead on OLTP across transaction counts;
//! (b) fragmentation cost vs defragmentation cost per period (the 10 k
//!     crossover that justifies the paper's defrag period);
//! (c) transaction time breakdown;
//! (d) defragmentation time breakdown.

use pushtap_core::{Pushtap, PushtapConfig, DEFRAG_FIXED_OVERHEAD};
use pushtap_mvcc::DefragStrategy;
use pushtap_olap::Query;
use pushtap_pim::Ps;

fn config(scale: f64, defrag_period: u64, min_delta: u64) -> PushtapConfig {
    let mut cfg = PushtapConfig::small();
    cfg.db.scale = scale;
    cfg.db.min_delta_rows = min_delta;
    cfg.defrag_period = defrag_period;
    cfg
}

/// One Fig. 11(a) point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OltpOverheadPoint {
    /// Transactions run.
    pub txns: u64,
    /// Pure transaction time.
    pub txn_time: Ps,
    /// Defragmentation pause time.
    pub defrag_time: Ps,
    /// Overhead fraction.
    pub overhead: f64,
}

/// Fig. 11(a): OLTP with periodic defragmentation (period 10 k scaled
/// down to the run size/1... the paper's 10 k at full scale).
///
/// The paper's system has no incremental GC, and the runtime's periodic
/// maintenance is now GC-first (the barrier only runs when GC reclaims
/// nothing — which it never is on an unpinned single instance), so this
/// figure reproduces the paper's defrag-only economics by invoking the
/// barrier explicitly at each period boundary.
pub fn oltp_overhead(scale: f64, period: u64, checkpoints: &[u64]) -> Vec<OltpOverheadPoint> {
    let max = *checkpoints.iter().max().expect("checkpoints");
    let mut p = Pushtap::new(config(scale, 0, 4 * max)).expect("build");
    let mut gen = p.txn_gen(31);
    let mut out = Vec::new();
    let mut done = 0u64;
    let mut txn_time = Ps::ZERO;
    let mut defrag_time = Ps::ZERO;
    for &cp in checkpoints {
        while done < cp {
            let n = period.min(cp - done);
            let r = p.run_txns(&mut gen, n);
            done += n;
            txn_time += r.txn_time;
            if done.is_multiple_of(period) {
                defrag_time += p.defragment_all().1;
            }
        }
        out.push(OltpOverheadPoint {
            txns: cp,
            txn_time,
            defrag_time,
            overhead: defrag_time.ps() as f64 / (txn_time + defrag_time).ps() as f64,
        });
    }
    out
}

/// One Fig. 11(b) point: costs of *not* defragmenting for a period of
/// `txns` transactions vs defragmenting once at its end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragmentationPoint {
    /// Period length in transactions.
    pub txns: u64,
    /// Cumulative OLAP slowdown from scanning delta rows over the period
    /// (queries interleaved every `txns_per_query` transactions).
    pub fragmentation: Ps,
    /// One defragmentation pass at the end of the period.
    pub defragmentation: Ps,
}

/// Fig. 11(b): sweep period lengths. `txns_per_query` sets how often
/// analytical queries sample the fragmented state (HTAP mix).
pub fn fragmentation_vs_defrag(
    scale: f64,
    checkpoints: &[u64],
    txns_per_query: u64,
) -> Vec<FragmentationPoint> {
    let max = *checkpoints.iter().max().expect("checkpoints");
    let mut p = Pushtap::new(config(scale, 0, 4 * max)).expect("build");
    let mut gen = p.txn_gen(47);
    // Clean-state query cost.
    let clean = {
        let r = p.run_query(Query::Q6);
        r.timing.end.saturating_sub(r.consistency)
    };
    let mut out = Vec::new();
    let mut done = 0u64;
    for &cp in checkpoints {
        p.run_txns(&mut gen, cp - done);
        done = cp;
        let r = p.run_query(Query::Q6);
        let fragged = r.timing.end.saturating_sub(r.consistency);
        let per_query = fragged.saturating_sub(clean);
        let queries_in_period = (cp / txns_per_query).max(1);
        out.push(FragmentationPoint {
            txns: cp,
            fragmentation: per_query * queries_in_period,
            defragmentation: p.estimate_defrag_pause(DefragStrategy::Hybrid),
        });
    }
    out
}

/// Fig. 11(c): the transaction-time CPU breakdown
/// (compute, alloc, index, chain fractions).
pub fn txn_breakdown(scale: f64, txns: u64) -> (f64, f64, f64, f64) {
    let mut p = Pushtap::new(config(scale, 10_000, 4 * txns)).expect("build");
    let mut gen = p.txn_gen(7);
    let r = p.run_txns(&mut gen, txns);
    r.breakdown.cpu_fractions()
}

/// Fig. 11(d): defragmentation breakdown: (chain-traverse fraction,
/// data-copy fraction) of the variable (non-fixed) defrag time.
pub fn defrag_breakdown(scale: f64, txns: u64) -> (f64, f64) {
    let mut p = Pushtap::new(config(scale, 0, 4 * txns)).expect("build");
    let mut gen = p.txn_gen(7);
    p.run_txns(&mut gen, txns);
    let (stats, pause) = p.defragment_all();
    let traverse = p
        .db()
        .meter()
        .cpu
        .cycles(stats.chain_steps * p.db().meter().costs.chain_step_cycles);
    let variable = pause.saturating_sub(DEFRAG_FIXED_OVERHEAD);
    let copy = variable.saturating_sub(traverse);
    let t = variable.ps().max(1) as f64;
    (traverse.ps() as f64 / t, copy.ps() as f64 / t)
}

/// Prints the whole figure.
pub fn print_all(scale: f64) {
    println!("== Fig. 11(a): defrag overhead on OLTP ==");
    let pts = oltp_overhead(scale, 500, &[500, 1_000, 2_000, 4_000]);
    println!(
        "{:>8} {:>14} {:>14} {:>10}",
        "txns", "txn time", "defrag", "overhead"
    );
    for p in &pts {
        println!(
            "{:>8} {:>14} {:>14} {:>9.2}%",
            p.txns,
            p.txn_time.to_string(),
            p.defrag_time.to_string(),
            p.overhead * 100.0
        );
    }

    println!("\n== Fig. 11(b): fragmentation vs defragmentation per period ==");
    let pts = fragmentation_vs_defrag(scale, &[100, 400, 1_000, 4_000, 10_000], 1_000);
    println!(
        "{:>8} {:>16} {:>16} {:>8}",
        "txns", "fragmentation", "defragmentation", "frag>defrag"
    );
    for p in &pts {
        println!(
            "{:>8} {:>16} {:>16} {:>8}",
            p.txns,
            p.fragmentation.to_string(),
            p.defragmentation.to_string(),
            p.fragmentation > p.defragmentation
        );
    }

    let (compute, alloc, index, chain) = txn_breakdown(scale, 1_000);
    println!("\n== Fig. 11(c): transaction breakdown ==");
    println!(
        "computation {:.2}%  allocation {:.2}%  indexing {:.2}%  chain {:.3}%",
        compute * 100.0,
        alloc * 100.0,
        index * 100.0,
        chain * 100.0
    );
    println!("(paper: 36.65% / 44.10% / 19.25% / <0.1%)");

    let (traverse, copy) = defrag_breakdown(scale, 1_000);
    println!("\n== Fig. 11(d): defragmentation breakdown ==");
    println!(
        "version-chain traverse {:.2}%  data copy {:.2}%",
        traverse * 100.0,
        copy * 100.0
    );
    println!("(paper: 26.39% / 73.61%)");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 11(a): defragmentation costs OLTP only a few percent (paper:
    /// < 1.5 %; generous bound at our reduced scale).
    #[test]
    fn oltp_overhead_is_small() {
        let pts = oltp_overhead(0.0005, 500, &[2_000]);
        assert!(pts[0].overhead < 0.10, "overhead {}", pts[0].overhead);
        assert!(pts[0].defrag_time > Ps::ZERO);
    }

    /// Fig. 11(b): fragmentation grows superlinearly with the period
    /// while defragmentation grows sublinearly (fixed cost amortises), so
    /// long periods favour defragmenting.
    #[test]
    fn fragmentation_overtakes_defrag() {
        let pts = fragmentation_vs_defrag(0.0005, &[200, 2_000, 8_000], 200);
        // Short period: defrag dominates (fixed overhead).
        assert!(pts[0].defragmentation > pts[0].fragmentation);
        // Fragmentation cost strictly grows with the period.
        assert!(pts[2].fragmentation > pts[0].fragmentation);
        // The gap narrows by at least an order of magnitude.
        let r0 = pts[0].defragmentation.ps() as f64 / pts[0].fragmentation.ps().max(1) as f64;
        let r2 = pts[2].defragmentation.ps() as f64 / pts[2].fragmentation.ps().max(1) as f64;
        assert!(r2 < r0 / 5.0, "ratio did not close: {r0} → {r2}");
    }

    /// Fig. 11(c): the component shares land near the paper's.
    #[test]
    fn breakdown_near_paper() {
        let (compute, alloc, index, chain) = txn_breakdown(0.0005, 400);
        assert!((0.25..0.50).contains(&compute));
        assert!((0.30..0.60).contains(&alloc));
        assert!((0.08..0.32).contains(&index));
        assert!(chain < 0.01);
    }

    /// Fig. 11(d): data copy dominates chain traversal.
    #[test]
    fn copy_dominates_traverse() {
        let (traverse, copy) = defrag_breakdown(0.0005, 500);
        assert!(copy > traverse, "copy {copy} vs traverse {traverse}");
        assert!((traverse + copy - 1.0).abs() < 0.01);
    }
}
