//! Open-loop queueing experiment: the saturation knee of the sharded
//! deployment under a Poisson arrival process.
//!
//! Closed-loop benches (every other module here) measure *capacity* —
//! the next transaction departs the moment the previous one commits,
//! so queueing never shows. This sweep instead offers load at a fixed
//! arrival rate through [`pushtap_shard::ShardedHtap::run_open_loop`]:
//! per shard count it first measures closed-loop capacity, then drives
//! the same deployment at fixed fractions of it ([`FRACTIONS`]) and
//! reports what a latency SLO actually buys —
//!
//! * **sojourn time** (arrival → wave completion) p50/p99/p999: flat
//!   and hop-dominated below the knee, rising super-linearly past it;
//! * **queue depth**: the inbox backlog admissions see;
//! * **rejection rate**: admission-control backpressure — zero below
//!   the knee, positive once the inbox bound absorbs the overload.
//!
//! `BENCH_open_loop.json` holds the whole sweep so the knee's position
//! is machine-checkable across PRs.

use std::fmt::Write as _;

use pushtap_chbench::RemoteMix;
use pushtap_shard::{
    ArrivalConfig, ArrivalGen, CoordinatorMode, OpenLoopConfig, ShardConfig, ShardedHtap,
};

/// Offered-load fractions of measured closed-loop capacity: three
/// points below the knee, two past it.
pub const FRACTIONS: [f64; 5] = [0.3, 0.6, 0.9, 1.3, 2.0];

/// Per-shard inbox bound for the sweep: deep enough that sub-knee
/// traffic never rejects, shallow enough that overload does.
pub const INBOX_DEPTH: usize = 128;

/// Sliding scheduling window (transactions) of the incremental wave
/// scheduler.
pub const WINDOW: usize = 32;

/// One point of the sweep: one shard count at one offered-load
/// fraction.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopPoint {
    /// Shard count.
    pub shards: u32,
    /// Offered load as a fraction of measured closed-loop capacity.
    pub fraction: f64,
    /// Measured closed-loop capacity (transactions per simulated
    /// second) this point's rate was derived from.
    pub capacity_tps: f64,
    /// Offered arrival rate actually generated.
    pub offered_tps: f64,
    /// Committed throughput over the run's makespan.
    pub throughput_tps: f64,
    /// Arrivals admitted past the inbox bound.
    pub admitted: u64,
    /// Arrivals rejected at a full inbox.
    pub rejected: u64,
    /// `rejected / arrivals`.
    pub rejection_rate: f64,
    /// Sojourn-time quantiles (arrival → wave completion), picoseconds.
    pub sojourn_p50: u64,
    /// 99th-percentile sojourn, picoseconds.
    pub sojourn_p99: u64,
    /// 99.9th-percentile sojourn, picoseconds.
    pub sojourn_p999: u64,
    /// Mean inbox depth seen at admission.
    pub queue_depth_mean: u64,
    /// Deepest backlog any inbox held.
    pub queue_depth_max: u64,
    /// Waves the incremental scheduler dispatched.
    pub waves: u64,
}

fn deployment(shards: u32) -> ShardedHtap {
    ShardedHtap::new(ShardConfig::small(shards).with_mode(CoordinatorMode::Pipelined))
        .expect("build shards")
}

/// Measures the deployment's closed-loop capacity: `txns` back-to-back
/// transactions, committed over makespan.
pub fn capacity_tps(shards: u32, txns: u64) -> f64 {
    let mut service = deployment(shards);
    let warehouses = service.map().warehouses();
    let mut gen = service
        .global_txn_gen(42)
        .with_remote_mix(RemoteMix::TPCC, warehouses);
    let r = service.run_txns(&mut gen, txns);
    r.committed() as f64 / r.makespan().as_secs()
}

/// Runs one open-loop point: `txns` Poisson arrivals at `rate_tps`
/// against a fresh deployment of `shards` shards.
pub fn run_point(shards: u32, capacity: f64, fraction: f64, txns: u64) -> OpenLoopPoint {
    let rate_tps = capacity * fraction;
    let mut service = deployment(shards);
    let warehouses = service.map().warehouses();
    let mut gen = service
        .global_txn_gen(42)
        .with_remote_mix(RemoteMix::TPCC, warehouses);
    let mut arrivals = ArrivalGen::new(7, ArrivalConfig::poisson(rate_tps));
    let open = OpenLoopConfig::new(INBOX_DEPTH, WINDOW);
    let rep = service.run_open_loop(&mut gen, &mut arrivals, txns, &open);
    OpenLoopPoint {
        shards,
        fraction,
        capacity_tps: capacity,
        offered_tps: rep.offered_rate_tps(),
        throughput_tps: rep.throughput_tps(),
        admitted: rep.admitted(),
        rejected: rep.rejected(),
        rejection_rate: rep.rejection_rate(),
        sojourn_p50: rep.sojourn_quantile(0.50),
        sojourn_p99: rep.sojourn_quantile(0.99),
        sojourn_p999: rep.sojourn_quantile(0.999),
        queue_depth_mean: rep.inbox_depth.mean(),
        queue_depth_max: rep.inbox_depth.max(),
        waves: rep.exec.coord.waves,
    }
}

/// The full sweep: every shard count × every offered-load fraction.
pub fn sweep(shard_counts: &[u32], txns: u64) -> Vec<OpenLoopPoint> {
    let mut points = Vec::new();
    for &shards in shard_counts {
        let capacity = capacity_tps(shards, txns);
        for &fraction in &FRACTIONS {
            points.push(run_point(shards, capacity, fraction, txns));
        }
    }
    points
}

fn print_table(points: &[OpenLoopPoint]) {
    println!(
        "{:>6} {:>9} {:>12} {:>12} {:>9} {:>9} {:>8} {:>12} {:>12} {:>12} {:>7} {:>7} {:>7}",
        "shards",
        "fraction",
        "offered/s",
        "committed/s",
        "admitted",
        "rejected",
        "rej%",
        "p50(ns)",
        "p99(ns)",
        "p999(ns)",
        "qmean",
        "qmax",
        "waves"
    );
    for p in points {
        println!(
            "{:>6} {:>9.2} {:>12.0} {:>12.0} {:>9} {:>9} {:>7.2}% {:>12.1} {:>12.1} {:>12.1} {:>7} {:>7} {:>7}",
            p.shards,
            p.fraction,
            p.offered_tps,
            p.throughput_tps,
            p.admitted,
            p.rejected,
            p.rejection_rate * 100.0,
            p.sojourn_p50 as f64 / 1e3,
            p.sojourn_p99 as f64 / 1e3,
            p.sojourn_p999 as f64 / 1e3,
            p.queue_depth_mean,
            p.queue_depth_max,
            p.waves,
        );
    }
}

/// Renders the sweep as the JSON document `BENCH_open_loop.json` holds.
pub fn render_json(txns: u64, points: &[OpenLoopPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"open_loop\",");
    let _ = writeln!(out, "  \"mix\": \"tpcc\",");
    let _ = writeln!(out, "  \"txns\": {txns},");
    let _ = writeln!(out, "  \"burstiness\": 0.0,");
    let _ = writeln!(out, "  \"inbox_depth\": {INBOX_DEPTH},");
    let _ = writeln!(out, "  \"window\": {WINDOW},");
    let _ = writeln!(out, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"shards\": {},", p.shards);
        let _ = writeln!(out, "      \"fraction\": {:.2},", p.fraction);
        let _ = writeln!(out, "      \"capacity_tps\": {:.1},", p.capacity_tps);
        let _ = writeln!(out, "      \"offered_tps\": {:.1},", p.offered_tps);
        let _ = writeln!(out, "      \"throughput_tps\": {:.1},", p.throughput_tps);
        let _ = writeln!(out, "      \"admitted\": {},", p.admitted);
        let _ = writeln!(out, "      \"rejected\": {},", p.rejected);
        let _ = writeln!(out, "      \"rejection_rate\": {:.4},", p.rejection_rate);
        let _ = writeln!(out, "      \"sojourn_p50_ps\": {},", p.sojourn_p50);
        let _ = writeln!(out, "      \"sojourn_p99_ps\": {},", p.sojourn_p99);
        let _ = writeln!(out, "      \"sojourn_p999_ps\": {},", p.sojourn_p999);
        let _ = writeln!(out, "      \"queue_depth_mean\": {},", p.queue_depth_mean);
        let _ = writeln!(out, "      \"queue_depth_max\": {},", p.queue_depth_max);
        let _ = writeln!(out, "      \"waves\": {}", p.waves);
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = write!(out, "}}");
    out
}

/// Runs the sweep, prints the table, and writes `BENCH_open_loop.json`.
pub fn print_and_write_json(shard_counts: &[u32], txns: u64) -> std::io::Result<()> {
    println!(
        "-- open_loop: {txns} arrivals/point, Poisson, TPC-C mix, \
         inbox {INBOX_DEPTH}, window {WINDOW} --"
    );
    let points = sweep(shard_counts, txns);
    print_table(&points);
    let path = "BENCH_open_loop.json";
    std::fs::write(path, render_json(txns, &points))?;
    println!("wrote {path}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The knee in miniature: sub-saturation traffic rejects nothing
    /// and keeps p99 near the service floor; 2× overload rejects and
    /// inflates p99 super-linearly relative to the offered-rate step.
    #[test]
    fn knee_behavior_at_two_shards() {
        let txns = 1200;
        let capacity = capacity_tps(2, txns);
        assert!(capacity > 0.0);
        let low = run_point(2, capacity, 0.3, txns);
        let high = run_point(2, capacity, 2.0, txns);
        assert_eq!(low.rejected, 0, "sub-knee traffic must not reject");
        assert!(high.rejected > 0, "2x overload must trip admission control");
        assert!(high.rejection_rate > 0.0 && high.rejection_rate < 1.0);
        // Past the knee the p99 sojourn must grow much faster than the
        // 6.7x offered-rate step — queueing, not service time.
        assert!(
            high.sojourn_p99 > 8 * low.sojourn_p99.max(1),
            "p99 must blow up past the knee ({} vs {})",
            high.sojourn_p99,
            low.sojourn_p99
        );
        assert_eq!(low.admitted, txns);
        assert_eq!(high.admitted + high.rejected, txns);
    }

    /// The JSON document carries every contract key the CI smoke greps.
    #[test]
    fn json_carries_contract_keys() {
        let points = [run_point(1, 50_000_000.0, 0.5, 40)];
        let json = render_json(40, &points);
        for key in [
            "\"bench\": \"open_loop\"",
            "\"inbox_depth\"",
            "\"window\"",
            "\"shards\"",
            "\"offered_tps\"",
            "\"throughput_tps\"",
            "\"rejection_rate\"",
            "\"sojourn_p99_ps\"",
            "\"queue_depth_max\"",
            "\"waves\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }
}
