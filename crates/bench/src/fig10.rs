//! Figure 10: the OLTP/OLAP throughput frontier for MI and PUSHtap.
//!
//! Model parameters are *measured* on small instances (per-transaction
//! time, per-query time, per-transaction consistency cost, bus traffic),
//! then the closed-form frontier of [`pushtap_core::FrontierParams`] is
//! swept.

use pushtap_core::{FrontierParams, FrontierPoint, MultiInstance, Pushtap, PushtapConfig};
use pushtap_olap::Query;
use pushtap_oltp::{DbConfig, DbFormat};
use pushtap_pim::{Ps, SystemConfig};

/// Measured frontier inputs for both systems.
#[derive(Debug, Clone, Copy)]
pub struct MeasuredParams {
    /// PUSHtap's frontier inputs.
    pub pushtap: FrontierParams,
    /// MI's frontier inputs.
    pub mi: FrontierParams,
}

/// Measures the model inputs at `scale`.
pub fn measure(scale: f64) -> MeasuredParams {
    let system = SystemConfig::dimm();
    let cores = system.cpu.cores;
    let bus = system.cpu_peak_bw() * 0.6;

    // --- PUSHtap ---
    let mut db = DbConfig::small();
    db.scale = scale;
    // Arenas sized so no emergency defragmentation pollutes the
    // measurement (the paper defragments every 10 k transactions).
    db.min_delta_rows = 65_536;
    let cfg = PushtapConfig {
        db: db.clone(),
        system,
        arch: pushtap_pim::ControlArch::Pushtap,
        defrag_period: 10_000, // the paper's period
        defrag_strategy: pushtap_mvcc::DefragStrategy::Hybrid,
    };
    let mut p = Pushtap::new(cfg).expect("build");
    let mut gen = p.txn_gen(17);
    let fetched0 = p.mem().stats().cpu_fetched;
    let report = p.run_txns(&mut gen, 2_000);
    let txn_bus_bytes = (p.mem().stats().cpu_fetched - fetched0) as f64 / 2_000.0;
    let txn_time = report.txn_time / 2_000;
    // Consistency per txn: snapshotting plus the amortised per-period
    // defragmentation pause (estimated at the paper's 10 k period).
    let snap = p.run_query(Query::Q6).consistency;
    let defrag_amortised = p.estimate_defrag_pause(pushtap_mvcc::DefragStrategy::Hybrid) / 10_000;
    let per_txn_consistency = report.defrag_time / 2_000 + snap / 2_000 + defrag_amortised;
    // Query time: mean of the three queries, scan only.
    let fetched1 = p.mem().stats().cpu_fetched;
    let mut q_total = Ps::ZERO;
    for q in Query::ALL {
        let r = p.run_query(q);
        q_total += r.timing.end.saturating_sub(r.consistency);
    }
    let query_time = q_total / 3;
    let query_bus_bytes = ((p.mem().stats().cpu_fetched - fetched1) as f64 / 3.0).max(1.0);

    let pushtap = FrontierParams {
        txn_time,
        query_time,
        per_txn_consistency,
        cores,
        bus_bytes_per_sec: bus,
        txn_bus_bytes,
        query_bus_bytes,
    };

    // --- MI ---
    let mut mi = MultiInstance::new(
        DbConfig {
            scale,
            format: DbFormat::RowStore,
            min_delta_rows: 65_536,
            ..DbConfig::small()
        },
        system,
        1.0,
    )
    .expect("build");
    let mut gen = pushtap_chbench::TxnGen::new(
        17,
        mi.row_db.table(pushtap_chbench::Table::Warehouse).n_rows(),
        mi.row_db.table(pushtap_chbench::Table::Customer).n_rows(),
        mi.row_db.table(pushtap_chbench::Table::Item).n_rows(),
        mi.row_db.table(pushtap_chbench::Table::Stock).n_rows(),
    );
    let t0 = mi.now();
    for txn in gen.batch(1_000) {
        mi.execute_txn(&txn);
    }
    let mi_txn_time = (mi.now() - t0) / 1_000;
    // Rebuild cost per transaction of staleness.
    let rebuild_per_txn = mi.rebuild_time() / 1_000;
    // Query time: mean of the three queries, rebuild excluded (same
    // accounting as the PUSHtap measurement above).
    let mut mi_q_total = Ps::ZERO;
    for q in Query::ALL {
        let (total, rebuild) = mi.run_query(q);
        mi_q_total += total.saturating_sub(rebuild);
    }
    let mi_query_time = mi_q_total / 3;

    let mi_params = FrontierParams {
        txn_time: mi_txn_time,
        query_time: mi_query_time,
        per_txn_consistency: rebuild_per_txn,
        cores,
        bus_bytes_per_sec: bus,
        // MI's row instance lives in host memory; its queries also pull
        // rebuild traffic over the bus (folded into σ), so the explicit
        // per-query bus share is the scan-result collection only.
        txn_bus_bytes,
        query_bus_bytes,
    };

    MeasuredParams {
        pushtap,
        mi: mi_params,
    }
}

/// Sweeps both frontiers with `n` points each.
pub fn frontiers(scale: f64, n: usize) -> (Vec<FrontierPoint>, Vec<FrontierPoint>) {
    let m = measure(scale);
    (m.pushtap.sweep(n), m.mi.sweep(n))
}

/// Prints the figure.
pub fn print_all(scale: f64) {
    let m = measure(scale);
    println!("== Fig. 10: throughput frontier ==");
    println!(
        "measured: PUSHtap txn {} query {} σ {}",
        m.pushtap.txn_time, m.pushtap.query_time, m.pushtap.per_txn_consistency
    );
    println!(
        "measured: MI      txn {} query {} σ {}",
        m.mi.txn_time, m.mi.query_time, m.mi.per_txn_consistency
    );
    println!(
        "\n{:<24} {:>16} {:>16}",
        "system", "peak tpmC(M)", "peak QphH(k)"
    );
    for (label, f) in [("PUSHtap", &m.pushtap), ("MI", &m.mi)] {
        println!(
            "{:<24} {:>16.1} {:>16.1}",
            label,
            f.peak_tpmc() * m.pushtap.cores as f64 / 1e6,
            f.peak_qphh() / 1e3
        );
    }
    println!("\nfrontier points (tpmC_M, QphH_k):");
    for (label, pts) in [("PUSHtap", m.pushtap.sweep(12)), ("MI", m.mi.sweep(12))] {
        let s: Vec<String> = pts
            .iter()
            .map(|p| {
                format!(
                    "({:.1},{:.1})",
                    p.tpmc * m.pushtap.cores as f64 / 1e6,
                    p.qphh / 1e3
                )
            })
            .collect();
        println!("  {label}: {}", s.join(" "));
    }
    // The paper's headline ratios.
    let ratio_oltp = m.pushtap.peak_tpmc() / m.mi.peak_tpmc().max(1e-9);
    let mi_peak_x = m.mi.peak_txn_rate();
    let ratio_olap_at_mi_peak =
        m.pushtap.max_query_rate(mi_peak_x) / m.mi.max_query_rate(mi_peak_x * 0.999).max(1e-9);
    println!(
        "\npeak-OLTP ratio (paper 3.4x): {ratio_oltp:.1}x; OLAP at MI's peak OLTP (paper 4.4x): {ratio_olap_at_mi_peak:.1}x"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 10 shape: PUSHtap's frontier dominates MI's — flat OLAP
    /// retention and a larger frontier area.
    #[test]
    fn pushtap_frontier_dominates() {
        let (push, mi) = frontiers(0.0005, 8);
        assert_eq!(push.len(), 8);
        // Peak OLAP with OLTP idle is comparable (both scan compact-ish
        // columns)…
        let p0 = push[0].qphh;
        let m0 = mi[0].qphh;
        assert!(p0 > 0.0 && m0 > 0.0);
        // …but at mid frontier PUSHtap retains much more OLAP throughput.
        let p_mid = push[4].qphh / p0;
        let m_mid = mi[4].qphh / m0;
        assert!(p_mid > m_mid, "PUSHtap retention {p_mid} vs MI {m_mid}");
    }

    #[test]
    fn measured_params_are_sane() {
        let m = measure(0.0005);
        assert!(m.pushtap.txn_time > pushtap_pim::Ps::ZERO);
        assert!(m.mi.per_txn_consistency > m.pushtap.per_txn_consistency);
        assert!(m.pushtap.query_time > m.pushtap.txn_time);
    }
}
