//! Figure 9: (a) OLTP execution time under RS / CS / PUSHtap formats
//! (DIMM and HBM); (b) analytical-query time with consistency work for
//! ideal / MI / PUSHtap (DIMM and HBM) across pre-query transaction
//! counts.

use pushtap_core::{IdealModel, MultiInstance, Pushtap, PushtapConfig};
use pushtap_olap::Query;
use pushtap_oltp::{DbConfig, DbFormat};
use pushtap_pim::{ControlArch, MemSystem, Ps, SystemConfig};

/// One Fig. 9(a) series point.
#[derive(Debug, Clone, PartialEq)]
pub struct OltpPoint {
    /// System/format label.
    pub label: String,
    /// Transactions executed.
    pub txns: u64,
    /// Total transaction time.
    pub time: Ps,
}

fn db_config(scale: f64, format: DbFormat) -> DbConfig {
    DbConfig {
        scale,
        format,
        ..DbConfig::small()
    }
}

/// Fig. 9(a): run the same transaction stream under each format and
/// record cumulative time at each checkpoint.
pub fn oltp_formats(scale: f64, checkpoints: &[u64]) -> Vec<OltpPoint> {
    let max = *checkpoints.iter().max().expect("checkpoints");
    let mut out = Vec::new();
    let systems: Vec<(String, SystemConfig, DbFormat)> = vec![
        (
            "RS (ideal)".into(),
            SystemConfig::dimm(),
            DbFormat::RowStore,
        ),
        ("CS".into(), SystemConfig::dimm(), DbFormat::ColumnStore),
        (
            "PUSHtap".into(),
            SystemConfig::dimm(),
            DbFormat::Unified { th: 0.6 },
        ),
        (
            "PUSHtap (HBM)".into(),
            SystemConfig::hbm(),
            DbFormat::Unified { th: 0.6 },
        ),
    ];
    for (label, system, format) in systems {
        let cfg = PushtapConfig {
            db: db_config(scale, format),
            system,
            arch: ControlArch::Pushtap,
            defrag_period: 10_000,
            defrag_strategy: pushtap_mvcc::DefragStrategy::Hybrid,
        };
        let mut p = Pushtap::new(cfg).expect("build");
        let mut gen = p.txn_gen(99);
        let mut done = 0u64;
        let start = p.now();
        for &cp in checkpoints {
            let n = cp.min(max) - done;
            p.run_txns(&mut gen, n);
            done = cp;
            out.push(OltpPoint {
                label: label.clone(),
                txns: cp,
                time: p.now() - start,
            });
        }
    }
    out
}

/// One Fig. 9(b) series point.
#[derive(Debug, Clone, PartialEq)]
pub struct OlapPoint {
    /// System label.
    pub label: String,
    /// Transactions applied before the query.
    pub txns: u64,
    /// Scan + CPU-coordination time.
    pub scan: Ps,
    /// Consistency time (snapshot + defragmentation, or rebuild).
    pub consistency: Ps,
}

impl OlapPoint {
    /// Total query latency.
    pub fn total(&self) -> Ps {
        self.scan + self.consistency
    }
}

/// Fig. 9(b): query time after `txns` updates for each system.
pub fn olap_consistency(scale: f64, checkpoints: &[u64], query: Query) -> Vec<OlapPoint> {
    let max = *checkpoints.iter().max().expect("checkpoints");
    let mut out = Vec::new();

    // Ideal: compact columns, no consistency — constant in txns.
    {
        let cfg = SystemConfig::dimm();
        let ideal = IdealModel::new(ControlArch::Pushtap, &cfg);
        let mut mem = MemSystem::new(cfg);
        let t = ideal.query_time(query, scale, &mut mem, Ps::ZERO);
        for &cp in checkpoints {
            out.push(OlapPoint {
                label: "ideal".into(),
                txns: cp,
                scan: t,
                consistency: Ps::ZERO,
            });
        }
    }

    // PUSHtap on DIMM and HBM: defragmentation deferred to query time so
    // the consistency cost is visible per the paper's accounting.
    for (label, system) in [
        ("PUSHtap".to_string(), SystemConfig::dimm()),
        ("PUSHtap (HBM)".to_string(), SystemConfig::hbm()),
    ] {
        let mut db = db_config(scale, DbFormat::Unified { th: 0.6 });
        db.min_delta_rows = 2 * max + 4096;
        let cfg = PushtapConfig {
            db,
            system,
            arch: ControlArch::Pushtap,
            defrag_period: 0,
            defrag_strategy: pushtap_mvcc::DefragStrategy::Hybrid,
        };
        let mut p = Pushtap::new(cfg).expect("build");
        let mut gen = p.txn_gen(99);
        for &cp in checkpoints {
            p.run_txns(&mut gen, cp);
            // Defragmentation deferred to query time (paper's accounting:
            // "consistency time includes ... snapshot & defragmentation").
            let (_, defrag) = p.defragment_all();
            let report = p.run_query(query);
            out.push(OlapPoint {
                label: label.clone(),
                txns: cp,
                scan: report.timing.end.saturating_sub(report.consistency),
                consistency: report.consistency + defrag,
            });
        }
    }

    // MI on DIMM and HBM (the HBM variant carries the dedicated rebuild
    // accelerator, estimated at 4.1× per §7.3).
    for (label, system, speedup) in [
        ("MI".to_string(), SystemConfig::dimm(), 1.0),
        ("MI (HBM)".to_string(), SystemConfig::hbm(), 4.1),
    ] {
        let mut db = db_config(scale, DbFormat::RowStore);
        db.min_delta_rows = 2 * max + 4096;
        let mut mi = MultiInstance::new(db, system, speedup).expect("build");
        let mut gen = pushtap_chbench::TxnGen::new(
            99,
            mi.row_db.table(pushtap_chbench::Table::Warehouse).n_rows(),
            mi.row_db.table(pushtap_chbench::Table::Customer).n_rows(),
            mi.row_db.table(pushtap_chbench::Table::Item).n_rows(),
            mi.row_db.table(pushtap_chbench::Table::Stock).n_rows(),
        );
        for &cp in checkpoints {
            for txn in gen.batch(cp as usize) {
                mi.execute_txn(&txn);
            }
            let (total, rebuild) = mi.run_query(query);
            out.push(OlapPoint {
                label: label.clone(),
                txns: cp,
                scan: total - rebuild,
                consistency: rebuild,
            });
        }
    }
    out
}

/// Prints both panels.
pub fn print_all(scale: f64) {
    println!("== Fig. 9(a): OLTP time by storage format ==");
    let checkpoints = [200u64, 500, 1000];
    let pts = oltp_formats(scale, &checkpoints);
    println!("{:<15} {:>8} {:>14}", "format", "txns", "time");
    for p in &pts {
        println!("{:<15} {:>8} {:>14}", p.label, p.txns, p.time.to_string());
    }
    // Overheads vs RS at the largest checkpoint.
    let at = |label: &str| {
        pts.iter()
            .find(|p| p.label == label && p.txns == 1000)
            .map(|p| p.time)
            .expect("series")
    };
    let rs = at("RS (ideal)");
    for label in ["CS", "PUSHtap", "PUSHtap (HBM)"] {
        let t = at(label);
        println!(
            "  {label}: {:+.1}% vs RS",
            (t.ps() as f64 / rs.ps() as f64 - 1.0) * 100.0
        );
    }

    println!("\n== Fig. 9(b): analytical query time vs pre-query txns (Q1) ==");
    let checkpoints = [400u64, 1_000, 4_000, 10_000];
    let pts = olap_consistency(scale, &checkpoints, Query::Q1);
    println!(
        "{:<15} {:>8} {:>14} {:>14} {:>14}",
        "system", "txns", "scan", "consistency", "total"
    );
    for p in &pts {
        println!(
            "{:<15} {:>8} {:>14} {:>14} {:>14}",
            p.label,
            p.txns,
            p.scan.to_string(),
            p.consistency.to_string(),
            p.total().to_string()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 9(a) ordering at every checkpoint: RS ≤ PUSHtap < CS, with
    /// PUSHtap within a modest margin of RS (paper: +3.5 %, CS +28.1 %).
    #[test]
    fn format_ordering() {
        let pts = oltp_formats(0.0005, &[300]);
        let get = |l: &str| pts.iter().find(|p| p.label == l).unwrap().time;
        let rs = get("RS (ideal)");
        let cs = get("CS");
        let uni = get("PUSHtap");
        assert!(rs <= uni);
        assert!(uni < cs);
        assert!((uni.ps() as f64 / rs.ps() as f64) < 1.25);
        assert!((cs.ps() as f64 / rs.ps() as f64) > 1.10);
    }

    /// Fig. 9(b) shape: MI's consistency grows with staleness and
    /// dominates PUSHtap's snapshot+defrag by a widening factor; ideal is
    /// constant.
    #[test]
    fn consistency_scaling() {
        let pts = olap_consistency(0.0005, &[200, 2000], Query::Q6);
        let series = |l: &str| -> Vec<&OlapPoint> { pts.iter().filter(|p| p.label == l).collect() };
        let ideal = series("ideal");
        assert_eq!(ideal[0].total(), ideal[1].total());
        let mi = series("MI");
        let push = series("PUSHtap");
        assert!(mi[1].consistency > mi[0].consistency);
        // Consistency *growth* with staleness: MI ships whole rows over
        // the bus, PUSHtap only folds bitmaps and copies locally, so MI's
        // marginal cost per transaction is a multiple of PUSHtap's.
        // (Comparing growth cancels PUSHtap's fixed defrag overhead, which
        // dominates at this reduced scale but amortises at the paper's.)
        let mi_growth = mi[1].consistency.saturating_sub(mi[0].consistency);
        let push_growth = push[1].consistency.saturating_sub(push[0].consistency);
        assert!(
            mi_growth > push_growth * 2,
            "MI growth {mi_growth} vs PUSHtap growth {push_growth}"
        );
        // PUSHtap total stays near ideal (paper: within ~12.6 % at 8 M;
        // generous x4 bound at this scale).
        assert!(push[0].scan < ideal[0].scan * 4);
    }
}
