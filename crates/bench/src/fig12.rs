//! Figure 12: (a) defragmentation strategy comparison (CPU-only vs
//! PIM-only vs Hybrid); (b) Q6 execution time across WRAM sizes for the
//! original PIM architecture vs PUSHtap's memory-controller extension.

use pushtap_core::{IdealModel, Pushtap, PushtapConfig};
use pushtap_mvcc::DefragStrategy;
use pushtap_olap::Query;
use pushtap_pim::{ControlArch, MemSystem, Ps, SystemConfig};

/// One Fig. 12(a) point: estimated defragmentation time per strategy on
/// an identical delta-region state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategyPoint {
    /// Transactions before the pass.
    pub txns: u64,
    /// CPU-only strategy.
    pub cpu: Ps,
    /// PIM-only strategy.
    pub pim: Ps,
    /// Hybrid (per-part choice by Eq. 3).
    pub hybrid: Ps,
}

/// Fig. 12(a): sweep transaction counts; the three strategies are
/// evaluated non-destructively on the same state.
pub fn defrag_strategies(scale: f64, checkpoints: &[u64]) -> Vec<StrategyPoint> {
    let max = *checkpoints.iter().max().expect("checkpoints");
    let mut cfg = PushtapConfig::small();
    cfg.db.scale = scale;
    cfg.db.min_delta_rows = 4 * max;
    cfg.defrag_period = 0;
    let mut p = Pushtap::new(cfg).expect("build");
    let mut gen = p.txn_gen(13);
    let mut out = Vec::new();
    let mut done = 0u64;
    for &cp in checkpoints {
        p.run_txns(&mut gen, cp - done);
        done = cp;
        out.push(StrategyPoint {
            txns: cp,
            cpu: p.estimate_defrag_pause(DefragStrategy::Cpu),
            pim: p.estimate_defrag_pause(DefragStrategy::Pim),
            hybrid: p.estimate_defrag_pause(DefragStrategy::Hybrid),
        });
    }
    out
}

/// One Fig. 12(b) point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WramPoint {
    /// WRAM size in kB.
    pub wram_kb: u32,
    /// Q6 time under PUSHtap's scheduler/polling extension.
    pub pushtap: Ps,
    /// Q6 time under the original per-unit control architecture.
    pub original: Ps,
}

/// Fig. 12(b): Q6 across WRAM sizes, both control architectures.
pub fn wram_sweep(scale: f64, wram_kbs: &[u32]) -> Vec<WramPoint> {
    wram_kbs
        .iter()
        .map(|&kb| {
            let sys = SystemConfig::dimm().with_wram(kb * 1024);
            let mut times = [Ps::ZERO; 2];
            for (i, arch) in [ControlArch::Pushtap, ControlArch::Original]
                .into_iter()
                .enumerate()
            {
                let ideal = IdealModel::new(arch, &sys);
                let mut mem = MemSystem::new(sys);
                times[i] = ideal.query_time(Query::Q6, scale, &mut mem, Ps::ZERO);
            }
            WramPoint {
                wram_kb: kb,
                pushtap: times[0],
                original: times[1],
            }
        })
        .collect()
}

/// Prints the whole figure.
pub fn print_all(scale: f64) {
    println!("== Fig. 12(a): defragmentation strategies ==");
    let pts = defrag_strategies(scale, &[500, 2_000, 8_000]);
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "txns", "Only CPU", "Only PIM", "Hybrid"
    );
    for p in &pts {
        println!(
            "{:>8} {:>14} {:>14} {:>14}",
            p.txns,
            p.cpu.to_string(),
            p.pim.to_string(),
            p.hybrid.to_string()
        );
    }

    println!("\n== Fig. 12(b): Q6 time vs WRAM size ==");
    // Full-scale rows: the WRAM size only matters when a scan needs many
    // load phases, and this sweep is purely analytic (no population).
    let pts = wram_sweep(scale.max(1.0), &[16, 32, 64, 128, 256]);
    println!(
        "{:>9} {:>14} {:>14} {:>9}",
        "WRAM(kB)", "PUSHtap", "Original", "speedup"
    );
    for p in &pts {
        println!(
            "{:>9} {:>14} {:>14} {:>8.2}x",
            p.wram_kb,
            p.pushtap.to_string(),
            p.original.to_string(),
            p.original.ps() as f64 / p.pushtap.ps() as f64
        );
    }
    let first = pts.first().expect("points");
    let last = pts.last().expect("points");
    println!(
        "\noriginal improves {:.1}x from 16→256 kB (paper: 6.4x); PUSHtap speedup at 64 kB (paper: 3.0x)",
        first.original.ps() as f64 / last.original.ps() as f64
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 12(a): Hybrid is never worse than either pure strategy.
    #[test]
    fn hybrid_wins() {
        let pts = defrag_strategies(0.0005, &[500, 2_000]);
        for p in &pts {
            assert!(p.hybrid <= p.cpu, "{:?}", p);
            assert!(p.hybrid <= p.pim, "{:?}", p);
        }
        // Costs grow with accumulated versions.
        assert!(pts[1].hybrid >= pts[0].hybrid);
    }

    /// Fig. 12(b) shape: the original architecture improves strongly with
    /// WRAM (fewer mode switches) while PUSHtap is nearly flat; PUSHtap
    /// wins by a multiple at the default 64 kB.
    #[test]
    fn wram_sweep_shape() {
        let pts = wram_sweep(1.0, &[16, 64, 256]);
        let p16 = &pts[0];
        let p64 = &pts[1];
        let p256 = &pts[2];
        // Original improves markedly 16 → 256 kB.
        assert!(
            p16.original.ps() as f64 / p256.original.ps() as f64 > 2.0,
            "original {} → {}",
            p16.original,
            p256.original
        );
        // PUSHtap is much less sensitive.
        let push_gain = p16.pushtap.ps() as f64 / p256.pushtap.ps() as f64;
        assert!(push_gain < 1.5, "pushtap gain {push_gain}");
        // PUSHtap beats the original at 64 kB by a multiple (paper 3.0×).
        let speedup = p64.original.ps() as f64 / p64.pushtap.ps() as f64;
        assert!(speedup > 1.5, "speedup {speedup}");
    }
}
