//! Soak experiment: does oracle-driven garbage collection keep MVCC
//! memory **bounded** under sustained OLTP traffic — and what does it
//! cost?
//!
//! One sharded deployment runs a long uniform-mix stream in slices,
//! sampling the two garbage gauges at every slice boundary: **live
//! delta versions** (chained versions not yet folded back) and
//! **commit-log entries** (awaiting snapshot consumption). Two
//! configurations run the same stream:
//!
//! * **`gc`** — periodic maintenance on (a short period), so the
//!   GC-first policy folds, recycles, and trims throughout the run. The
//!   gauges must *plateau*: the final sample stays within 2× of the
//!   steady-state median ([`SoakRun::bounded`]).
//! * **`no_gc`** — periodic maintenance off and arenas oversized so
//!   pressure-driven reclamation never fires either. The gauges grow
//!   without bound — the control that shows what GC is buying.
//!
//! Each run also reports throughput (tpmC), the commit-latency
//! distribution, and the GC cost counters (passes, reclaimed versions,
//! recycled slots, trimmed log entries, time share), so the bound is
//! priced, not just asserted. `BENCH_soak.json` holds the whole
//! comparison for CI to grep.

use std::fmt::Write as _;

use pushtap_chbench::RemoteMix;
use pushtap_core::{tpmc, GcStats};
use pushtap_pim::Ps;
use pushtap_shard::{CoordinatorMode, ShardConfig, ShardedHtap};
use pushtap_trace::{fmt_ps, Histogram, LatencyStats};

/// Shards in the soak deployment.
const SHARDS: u32 = 2;
/// Slices the stream is cut into (one gauge sample per slice).
const SLICES: u64 = 20;
/// Driving threads per shard for the tpmC conversion.
const CORES: u32 = 16;
/// Maintenance period of the `gc` configuration.
const GC_PERIOD: u64 = 200;

/// One slice-boundary sample of the garbage gauges.
#[derive(Debug, Clone, Copy)]
pub struct SoakSample {
    /// Cumulative transactions committed when the sample was taken.
    pub txns: u64,
    /// Live delta versions across all shards and tables.
    pub live_versions: u64,
    /// Commit-log entries across all shards and tables.
    pub commit_log_len: u64,
}

/// One configuration's full soak outcome.
#[derive(Debug, Clone)]
pub struct SoakRun {
    /// Configuration key: `"gc"` or `"no_gc"`.
    pub label: &'static str,
    /// Gauge samples, one per slice boundary.
    pub samples: Vec<SoakSample>,
    /// Transactions committed (the whole stream, every time).
    pub committed: u64,
    /// Aggregate throughput over the summed slice makespans.
    pub tpmc: f64,
    /// End-to-end commit-latency distribution, merged over the run.
    pub commit_latency: LatencyStats,
    /// Merged GC counters (zero everywhere for `no_gc`).
    pub gc: GcStats,
    /// GC time as a share of total busy time.
    pub gc_time_share: f64,
    /// `DeltaFull` aborts (must stay 0 — the arenas are sized so
    /// neither configuration ever reclaims under pressure).
    pub aborts: u64,
    /// Final live-version gauge.
    pub final_live: u64,
    /// Median live-version gauge over the steady-state (second) half of
    /// the run.
    pub median_live: u64,
    /// Median live-version gauge over the warm-up (first) half — the
    /// yardstick that tells a plateau from steady linear growth.
    pub early_median_live: u64,
}

impl SoakRun {
    /// The boundedness acceptance: the final gauge within 2× of the
    /// steady-state median, *and* the steady-state median within 2× of
    /// the warm-up median. A GC plateau satisfies both; steady linear
    /// growth fails the second (its second-half median sits ~2.8× above
    /// its first-half median) even though its final-over-median ratio
    /// alone would look tame.
    pub fn bounded(&self) -> bool {
        self.final_live <= 2 * self.median_live.max(1)
            && self.median_live <= 2 * self.early_median_live.max(1)
    }

    /// Steady-state-over-warm-up growth ratio of the live-version
    /// gauge: ~1 for a plateau, ~2.8 for linear growth.
    pub fn growth_ratio(&self) -> f64 {
        self.median_live as f64 / self.early_median_live.max(1) as f64
    }
}

/// Builds the soak configuration. Both runs share ample arenas (sized
/// for the *unbounded* run's high-water mark, so `DeltaFull` pressure
/// never reclaims behind the experiment's back); only the maintenance
/// period differs.
fn soak_cfg(total_txns: u64, gc: bool) -> ShardConfig {
    let mut cfg = ShardConfig::small(SHARDS).with_mode(CoordinatorMode::Pipelined);
    // Delta capacity comfortably above the whole stream's version
    // count (~13 versions per transaction deployment-wide, measured):
    // the no-GC control must *grow*, not abort-and-reclaim. The
    // allocator is a bump pointer over simulated device addresses, so
    // an oversized arena costs nothing until written.
    cfg.base.db.min_delta_rows = (total_txns * 8).max(4096);
    cfg.base.defrag_period = if gc { GC_PERIOD } else { 0 };
    cfg
}

/// Runs one configuration over `total_txns` transactions in 20 slices,
/// sampling the gauges at each boundary.
pub fn run_soak(total_txns: u64, gc: bool) -> SoakRun {
    let cfg = soak_cfg(total_txns, gc);
    let mut service = ShardedHtap::new(cfg).expect("build soak deployment");
    let warehouses = service.map().warehouses();
    let mut gen = service
        .global_txn_gen(2025)
        .with_remote_mix(RemoteMix::TPCC, warehouses);
    let slice = (total_txns / SLICES).max(1);
    let mut samples = Vec::with_capacity(SLICES as usize);
    let mut committed = 0u64;
    let mut makespan = Ps::ZERO;
    let mut busy = Ps::ZERO;
    let mut gc_time = Ps::ZERO;
    let mut latency = Histogram::new();
    let mut stats = GcStats::default();
    let mut aborts = 0u64;
    while committed < total_txns {
        let n = slice.min(total_txns - committed);
        let report = service.run_txns(&mut gen, n);
        assert_eq!(report.committed(), n, "soak batches must commit whole");
        committed += n;
        makespan += report.makespan();
        busy += report
            .per_shard
            .iter()
            .map(|s| s.report.total_time())
            .sum::<Ps>();
        gc_time += report.gc_time();
        latency.merge(&report.commit_latency());
        stats.merge(&report.gc());
        aborts += report.aborts();
        let g = report.gc();
        samples.push(SoakSample {
            txns: committed,
            live_versions: g.live_versions,
            commit_log_len: g.commit_log_len,
        });
    }
    let median = |window: &[SoakSample]| {
        let mut lives: Vec<u64> = window.iter().map(|s| s.live_versions).collect();
        lives.sort_unstable();
        lives[lives.len() / 2]
    };
    let median_live = median(&samples[samples.len() / 2..]);
    let early_median_live = median(&samples[..(samples.len() / 2).max(1)]);
    let final_live = samples.last().map_or(0, |s| s.live_versions);
    SoakRun {
        label: if gc { "gc" } else { "no_gc" },
        samples,
        committed,
        tpmc: tpmc(committed, makespan, CORES),
        commit_latency: latency.stats(),
        gc_time_share: if busy == Ps::ZERO {
            0.0
        } else {
            gc_time.ps() as f64 / busy.ps() as f64
        },
        gc: stats,
        aborts,
        final_live,
        median_live,
        early_median_live,
    }
}

/// Runs both configurations over the same stream.
pub fn run_both(total_txns: u64) -> (SoakRun, SoakRun) {
    (run_soak(total_txns, true), run_soak(total_txns, false))
}

fn print_run(run: &SoakRun) {
    println!(
        "{:>6}: tpmC {:>10.0}  p50 {:>9}  p99 {:>9}  gc passes {:>5}  reclaimed {:>7}  \
         trimmed {:>7}  gc share {:>6.3}%  live early/steady/final {:>7}/{:>7}/{:>7} \
         ({:.2}x, bounded: {})",
        run.label,
        run.tpmc,
        fmt_ps(run.commit_latency.p50),
        fmt_ps(run.commit_latency.p99),
        run.gc.passes,
        run.gc.versions_reclaimed,
        run.gc.log_trimmed,
        run.gc_time_share * 100.0,
        run.early_median_live,
        run.median_live,
        run.final_live,
        run.growth_ratio(),
        run.bounded(),
    );
}

fn json_run(out: &mut String, run: &SoakRun) {
    let _ = write!(
        out,
        "{{\"label\":\"{}\",\"committed\":{},\"tpmc\":{:.1},\
         \"commit_p50_ps\":{},\"commit_p99_ps\":{},\"commit_p999_ps\":{},\
         \"gc_passes\":{},\"versions_reclaimed\":{},\"slots_recycled\":{},\
         \"log_trimmed\":{},\"chain_steps\":{},\"bytes_copied\":{},\
         \"gc_time_share\":{:.6},\"aborts\":{},\
         \"final_live_versions\":{},\"median_live_versions\":{},\
         \"early_median_live_versions\":{},\
         \"final_commit_log\":{},\"growth_ratio\":{:.3},\"bounded\":{},\
         \"samples\":[",
        run.label,
        run.committed,
        run.tpmc,
        run.commit_latency.p50,
        run.commit_latency.p99,
        run.commit_latency.p999,
        run.gc.passes,
        run.gc.versions_reclaimed,
        run.gc.slots_recycled,
        run.gc.log_trimmed,
        run.gc.chain_steps,
        run.gc.bytes_copied,
        run.gc_time_share,
        run.aborts,
        run.final_live,
        run.median_live,
        run.early_median_live,
        run.samples.last().map_or(0, |s| s.commit_log_len),
        run.growth_ratio(),
        run.bounded(),
    );
    for (i, s) in run.samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"txns\":{},\"live_versions\":{},\"commit_log_len\":{}}}",
            s.txns, s.live_versions, s.commit_log_len
        );
    }
    out.push_str("]}");
}

/// Renders the comparison as the JSON document `BENCH_soak.json` holds.
pub fn render_json(gc: &SoakRun, no_gc: &SoakRun) -> String {
    let mut out = String::from("{\n  \"bench\": \"soak\",\n  \"gc\": ");
    json_run(&mut out, gc);
    out.push_str(",\n  \"no_gc\": ");
    json_run(&mut out, no_gc);
    out.push_str("\n}\n");
    out
}

/// Runs the soak at `total_txns`, prints both rows, asserts the
/// acceptance shape (GC bounded, control unbounded, nothing reclaimed
/// behind the experiment's back), and writes `BENCH_soak.json`.
///
/// # Errors
///
/// Propagates the file write error.
///
/// # Panics
///
/// Panics if the acceptance shape does not hold.
pub fn print_and_write_json(total_txns: u64) -> std::io::Result<()> {
    println!("-- soak: {total_txns} txns, {SHARDS} shards, pipelined, TPC-C mix --");
    let (gc, no_gc) = run_both(total_txns);
    print_run(&gc);
    print_run(&no_gc);
    assert_eq!(
        gc.aborts, 0,
        "soak arenas must never reclaim under pressure"
    );
    assert_eq!(no_gc.aborts, 0, "control arenas must never reclaim at all");
    assert!(gc.gc.passes > 0, "the gc run must collect");
    assert_eq!(no_gc.gc.passes, 0, "the control must not collect");
    assert!(
        gc.bounded(),
        "gc live versions must plateau (early/steady/final {}/{}/{})",
        gc.early_median_live,
        gc.median_live,
        gc.final_live
    );
    assert!(
        !no_gc.bounded(),
        "the control must grow unboundedly (early/steady/final {}/{}/{})",
        no_gc.early_median_live,
        no_gc.median_live,
        no_gc.final_live
    );
    assert!(
        no_gc.final_live > 2 * gc.final_live.max(1),
        "the control must grow past the collected run"
    );
    let path = "BENCH_soak.json";
    std::fs::write(path, render_json(&gc, &no_gc))?;
    println!("wrote {path}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_soak_bounds_gc_and_not_control() {
        let (gc, no_gc) = run_both(2_000);
        assert_eq!(gc.committed, 2_000);
        assert!(gc.gc.passes > 0, "gc run must collect");
        assert_eq!(no_gc.gc.passes, 0, "control must not collect");
        assert_eq!(gc.aborts + no_gc.aborts, 0, "no pressure reclamation");
        assert!(gc.bounded(), "gc gauge must plateau");
        assert!(!no_gc.bounded(), "control gauge must keep growing");
        assert!(
            no_gc.final_live > gc.final_live,
            "control must hold more garbage"
        );
        let json = render_json(&gc, &no_gc);
        assert!(json.contains("\"bench\": \"soak\""));
        assert!(json.contains("\"bounded\":true"));
        assert!(json.contains("\"label\":\"no_gc\""));
    }
}
