//! Energy extension: the paper motivates PIM with ~10× lower access
//! energy (ref. \[11\], §1). This experiment scans the same column once through
//! the PIM units and once over the CPU bus and compares the energy
//! accounting — an extension beyond the paper's figures, enabled by the
//! simulator's energy counters.

use pushtap_chbench::{key_columns_upto, schema_with_keys, Table};
use pushtap_format::compact_layout;
use pushtap_olap::ScanEngine;
use pushtap_oltp::{AccessModel, HtapTable, TableConfig};
use pushtap_pim::{ControlArch, Geometry, MemSystem, PimOpKind, Ps, Side, SystemConfig};

/// Energy for one full-column scan, joules, via both paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyComparison {
    /// Rows scanned.
    pub rows: u64,
    /// Energy via PIM-local DMA, millijoules.
    pub pim_mj: f64,
    /// Energy via CPU bus streaming, millijoules.
    pub cpu_mj: f64,
}

impl EnergyComparison {
    /// CPU-to-PIM energy ratio.
    pub fn ratio(&self) -> f64 {
        self.cpu_mj / self.pim_mj.max(1e-12)
    }
}

fn table(rows: u64) -> HtapTable {
    let keys = key_columns_upto(22);
    let schema = schema_with_keys(Table::OrderLine, &keys[&Table::OrderLine]);
    let layout = compact_layout(&schema, 8, 0.6).expect("layout");
    let g = Geometry::dimm();
    HtapTable::new(
        layout,
        TableConfig {
            n_rows: rows,
            delta_rows: 64,
            block_rows: 1024,
            shards: g.bank_addrs().collect(),
            base_dram_row: 0,
            model: AccessModel::Unified,
            side: Side::Pim,
            granularity: g.granularity,
            bank_row_bytes: g.row_bytes,
            rows_per_bank: g.rows_per_bank,
        },
    )
}

/// Scans `ol_amount` over `rows` rows via PIM and via the CPU and
/// compares energy.
pub fn compare(rows: u64) -> EnergyComparison {
    let cfg = SystemConfig::dimm();
    let engine = ScanEngine::new(ControlArch::Pushtap, &cfg);
    let t = table(rows);
    let col = t
        .layout()
        .schema()
        .index_of("ol_amount")
        .expect("ol_amount");

    let mut pim_mem = MemSystem::new(cfg);
    engine.scan_column(&t, col, PimOpKind::Filter, &mut pim_mem, Ps::ZERO);
    let pim_mj = pim_mem.stats().energy.total_mj();

    let mut cpu_mem = MemSystem::new(cfg);
    engine.cpu_scan_column(&t, col, &mut cpu_mem, Ps::ZERO);
    let cpu_mj = cpu_mem.stats().energy.total_mj();

    EnergyComparison {
        rows,
        pim_mj,
        cpu_mj,
    }
}

/// Prints the comparison across scan sizes.
pub fn print_all() {
    println!("== Energy extension: column scan via PIM vs CPU ==");
    println!(
        "{:>12} {:>12} {:>12} {:>8}",
        "rows", "PIM (mJ)", "CPU (mJ)", "ratio"
    );
    for rows in [100_000u64, 1_000_000, 10_000_000] {
        let c = compare(rows);
        println!(
            "{:>12} {:>12.4} {:>12.4} {:>7.1}x",
            c.rows,
            c.pim_mj,
            c.cpu_mj,
            c.ratio()
        );
    }
    println!(
        "(the ratio compounds [11]'s ~10x per-byte saving with the CPU \
         path's 8x line-granularity overfetch of an 8 B-wide part)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline claim: PIM-local scanning saves close to the 10×
    /// per-byte factor (the exact ratio also reflects line-granularity
    /// overfetch on the CPU path).
    #[test]
    fn pim_saves_energy() {
        let c = compare(500_000);
        assert!(c.ratio() > 5.0, "ratio {}", c.ratio());
        assert!(c.pim_mj > 0.0 && c.cpu_mj > 0.0);
    }

    #[test]
    fn energy_scales_with_rows() {
        let a = compare(100_000);
        let b = compare(1_000_000);
        assert!(b.pim_mj > a.pim_mj * 5.0);
        assert!(b.cpu_mj > a.cpu_mj * 5.0);
    }
}
