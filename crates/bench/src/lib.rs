//! Experiment harnesses that regenerate every table and figure of the
//! PUSHtap paper's evaluation (§7).
//!
//! Each module owns one figure and exposes both structured data (for the
//! Criterion benches and tests) and a `print_all` routine (for the
//! `fig*` binaries). The mapping to the paper is indexed in `DESIGN.md`;
//! measured-vs-paper values are recorded in `EXPERIMENTS.md`.
//!
//! Scales: the binaries default to small populations (the simulator is
//! value-correct at any scale and the reported quantities are ratios);
//! pass a scale argument to grow them.

#![forbid(unsafe_code)]
pub mod energy;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig8;
pub mod fig9;
pub mod open_loop;
pub mod shard_scale;
pub mod soak;
pub mod table1;
