//! Table 1: the system configuration, printed from the live config
//! structs so the documentation can never drift from the code.

use pushtap_pim::SystemConfig;

/// Prints the configuration table for one system.
pub fn print_system(label: &str, cfg: &SystemConfig) {
    let g = &cfg.pim_geometry;
    let t = &cfg.pim_timing;
    println!("== Table 1 ({label}) ==");
    println!(
        "Host CPU: {} O3 cores @ {:.1} GHz, {} B cache lines",
        cfg.cpu.cores,
        cfg.cpu.freq_hz as f64 / 1e9,
        cfg.cpu.cache_line
    );
    println!(
        "PIM memory: {} channels x {} ranks, {} devices x {} banks, {} rows x {} B rows",
        g.channels,
        g.ranks_per_channel,
        g.devices_per_rank,
        g.banks_per_device,
        g.rows_per_bank,
        g.row_bytes
    );
    println!(
        "interleave granularity {} B, {} PIM units ({} per rank), capacity {} GiB",
        g.granularity,
        g.pim_units(),
        g.pim_units_per_rank(),
        g.total_bytes() >> 30
    );
    println!(
        "timing: tBURST={} tRCD={} tCL={} tRP={} tRAS={} tRRD={}",
        t.t_burst, t.t_rcd, t.t_cl, t.t_rp, t.t_ras, t.t_rrd
    );
    println!(
        "        tRFC={} tWR={} tWTR={} tRTP={} tRTW=tCS={} tREFI={}",
        t.t_rfc, t.t_wr, t.t_wtr, t.t_rtp, t.t_cs, t.t_refi
    );
    println!(
        "PIM unit: {} MHz, {} tasklets, {} kB WRAM, {} GB/s DMA; mode switch {}",
        cfg.pim_unit.freq_hz / 1_000_000,
        cfg.pim_unit.tasklets,
        cfg.pim_unit.wram_bytes / 1024,
        cfg.pim_unit.dma_bytes_per_sec as f64 / 1e9,
        cfg.mode_switch
    );
}

/// Prints both configured systems.
pub fn print_all() {
    print_system("DIMM-based system", &SystemConfig::dimm());
    println!();
    print_system("HBM-based system", &SystemConfig::hbm());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn printing_does_not_panic() {
        print_all();
    }
}
