//! Property tests of the workload substrate: generator determinism and
//! domain validity across every table, and consistency between the query
//! footprints and the key-column derivation.

use proptest::prelude::*;
use pushtap_chbench::{
    dec_u64, key_columns_of, query_footprints, scan_weight, schema_with_keys, RowGen, Table,
    TxnGen, ALL_TABLES,
};

fn arb_table() -> impl Strategy<Value = Table> {
    prop::sample::select(ALL_TABLES.to_vec())
}

proptest! {
    /// Any (table, row) regenerates identically and matches the schema's
    /// widths — random access without materialisation.
    #[test]
    fn generator_is_deterministic_and_width_exact(table in arb_table(), row in 0u64..10_000) {
        let g = RowGen::new(table, 10_000);
        let a = g.row(row);
        let b = g.row(row);
        prop_assert_eq!(&a, &b);
        for (i, v) in a.iter().enumerate() {
            prop_assert_eq!(v.len() as u32, g.schema().column(i as u32).width);
        }
    }

    /// Identifier columns stay inside their declared domains (so joins
    /// and filters have predictable selectivity at any scale).
    #[test]
    fn id_domains_hold(row in 0u64..50_000) {
        let g = RowGen::new(Table::OrderLine, 50_000);
        let s = g.schema();
        let iid = dec_u64(&g.value(row, s.index_of("ol_i_id").unwrap()));
        prop_assert!(iid < 100_000);
        let num = dec_u64(&g.value(row, s.index_of("ol_number").unwrap()));
        prop_assert!(num < 15);
        let qty = dec_u64(&g.value(row, s.index_of("ol_quantity").unwrap()));
        prop_assert!((1..=50).contains(&qty));
    }

    /// Key-column derivation is consistent with the footprints: a column
    /// is a key for subset S iff some query in S scans it (and it is not
    /// a wide text column).
    #[test]
    fn key_derivation_matches_footprints(
        queries in prop::collection::btree_set(1u8..=22, 1..8)
    ) {
        let qs: Vec<u8> = queries.into_iter().collect();
        let keys = key_columns_of(&qs);
        let fps = query_footprints();
        for (table, cols) in &keys {
            let schema = schema_with_keys(*table, cols);
            for col in schema.columns() {
                let scanned = qs.iter().any(|&q| {
                    fps[(q - 1) as usize].columns.contains(&col.name.as_str())
                });
                if col.is_key() {
                    prop_assert!(scanned, "{} keyed but never scanned", col.name);
                    prop_assert!(col.width <= pushtap_chbench::MAX_KEY_WIDTH);
                    prop_assert!(scan_weight(&col.name, &qs) >= 1.0);
                } else if scanned {
                    // Scanned but normal ⇒ must be a wide text column.
                    prop_assert!(col.width > pushtap_chbench::MAX_KEY_WIDTH,
                        "{} scanned yet normal at width {}", col.name, col.width);
                }
            }
        }
    }

    /// Transaction streams respect their population bounds for any seed.
    #[test]
    fn txn_streams_respect_population(seed in any::<u64>()) {
        let mut gen = TxnGen::new(seed, 3, 500, 700, 900);
        for txn in gen.batch(100) {
            match txn {
                pushtap_chbench::Txn::Payment(p) => {
                    prop_assert!(p.w_id < 3);
                    prop_assert!(p.c_row < 500);
                }
                pushtap_chbench::Txn::NewOrder(no) => {
                    prop_assert!(no.items.iter().all(|&i| i < 700));
                    prop_assert!(no.stock_rows.iter().all(|&s| s < 900));
                    // Distinct stock rows (MVCC requires one version per
                    // row per timestamp).
                    let mut sr = no.stock_rows.clone();
                    sr.sort_unstable();
                    sr.dedup();
                    prop_assert_eq!(sr.len(), no.stock_rows.len());
                }
            }
        }
    }
}
