//! Deterministic data generation for the CH-benCHmark tables.
//!
//! Values are generated from a splitmix-style counter keyed on
//! `(table, row, column)` so any row can be (re)generated independently —
//! no need to materialise 60M rows to know what row 59,999,999 contains.
//! Numeric columns encode little-endian; text columns are filled with a
//! deterministic printable pattern.

use pushtap_format::TableSchema;

use crate::schema::Table;

/// Encodes `v` little-endian into exactly `width` bytes (truncating high
/// bytes if `width < 8`).
pub fn enc_u64(v: u64, width: u32) -> Vec<u8> {
    let le = v.to_le_bytes();
    let mut out = vec![0u8; width as usize];
    let n = (width as usize).min(8);
    out[..n].copy_from_slice(&le[..n]);
    out
}

/// Decodes a little-endian unsigned integer from up to 8 bytes.
pub fn dec_u64(bytes: &[u8]) -> u64 {
    let mut le = [0u8; 8];
    let n = bytes.len().min(8);
    le[..n].copy_from_slice(&bytes[..n]);
    u64::from_le_bytes(le)
}

/// Fills `width` bytes with a printable deterministic pattern from `seed`.
pub fn enc_text(seed: u64, width: u32) -> Vec<u8> {
    (0..width)
        .map(|i| {
            let x = seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((i as u64).wrapping_mul(0xBF58476D1CE4E5B9));
            b'a' + ((x >> 33) % 26) as u8
        })
        .collect()
}

fn mix(table: Table, row: u64, col: u32) -> u64 {
    let mut x = (table as u64) << 56 ^ row.wrapping_mul(0x9E3779B97F4A7C15) ^ (col as u64) << 40;
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// A deterministic row generator for one table.
#[derive(Debug, Clone)]
pub struct RowGen {
    table: Table,
    schema: TableSchema,
    rows: u64,
}

impl RowGen {
    /// Creates a generator producing `rows` rows of `table`.
    pub fn new(table: Table, rows: u64) -> RowGen {
        RowGen {
            table,
            schema: table.schema(),
            rows,
        }
    }

    /// The table.
    pub fn table(&self) -> Table {
        self.table
    }

    /// The schema used for widths.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of rows this generator produces.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Generates the value of `(row, col)`.
    ///
    /// Identifier columns (`*_id`, `*key`) carry small dense values so
    /// joins/filters select realistic fractions; date columns carry a
    /// monotone timestamp; quantity/amount columns carry small numerics;
    /// other columns carry text.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn value(&self, row: u64, col: u32) -> Vec<u8> {
        assert!(row < self.rows, "row {row} out of range");
        let c = self.schema.column(col);
        let h = mix(self.table, row, col);
        let name = c.name.as_str();
        if name.ends_with("_id")
            || name.ends_with("suppkey")
            || name.ends_with("nationkey")
            || name.ends_with("regionkey")
            || name == "ol_number"
        {
            // Dense identifier domain.
            let dom = match name {
                "ol_i_id" | "i_id" | "s_i_id" => 100_000,
                "ol_number" => 15,
                _ => 10_000,
            };
            enc_u64(h % dom, c.width)
        } else if name.ends_with("_d") || name.ends_with("date") || name.ends_with("since") {
            // Timestamps: uniform over a 2007–2009 window, so date
            // predicates have scale-independent selectivity.
            enc_u64(1_167_600_000 + h % 63_072_000, c.width)
        } else if name.contains("quantity") || name.contains("cnt") {
            enc_u64(1 + h % 50, c.width)
        } else if name.contains("amount")
            || name.contains("price")
            || name.contains("bal")
            || name.contains("ytd")
            || name.contains("tax")
            || name.contains("discount")
            || name.contains("credit_lim")
        {
            // Money in cents.
            enc_u64(h % 1_000_000, c.width)
        } else {
            enc_text(h, c.width)
        }
    }

    /// Generates the whole row.
    pub fn row(&self, row: u64) -> Vec<Vec<u8>> {
        (0..self.schema.len() as u32)
            .map(|c| self.value(row, c))
            .collect()
    }

    /// Generates the primary-key value used by the hash index (the mixed
    /// identifier columns of the row).
    pub fn primary_key(&self, row: u64) -> u64 {
        // Rows are uniquely keyed by their index in this synthetic
        // population; real key columns are derived from it.
        row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_round_trips() {
        assert_eq!(dec_u64(&enc_u64(123_456, 4)), 123_456);
        assert_eq!(dec_u64(&enc_u64(77, 1)), 77);
        assert_eq!(dec_u64(&enc_u64(u64::MAX, 8)), u64::MAX);
        // Truncation keeps the low bytes.
        assert_eq!(dec_u64(&enc_u64(0x1_0000_0001, 4)), 1);
    }

    #[test]
    fn text_is_printable_and_deterministic() {
        let a = enc_text(42, 16);
        let b = enc_text(42, 16);
        assert_eq!(a, b);
        assert!(a.iter().all(|&c| c.is_ascii_lowercase()));
        assert_ne!(enc_text(43, 16), a);
    }

    #[test]
    fn rows_are_deterministic_and_distinct() {
        let g = RowGen::new(Table::OrderLine, 1000);
        assert_eq!(g.row(5), g.row(5));
        assert_ne!(g.row(5), g.row(6));
        assert_eq!(g.rows(), 1000);
        assert_eq!(g.table(), Table::OrderLine);
    }

    #[test]
    fn widths_match_schema() {
        for table in [Table::Customer, Table::OrderLine, Table::Stock] {
            let g = RowGen::new(table, 10);
            let row = g.row(3);
            for (i, v) in row.iter().enumerate() {
                assert_eq!(
                    v.len() as u32,
                    g.schema().column(i as u32).width,
                    "{} col {i}",
                    table.name()
                );
            }
        }
    }

    #[test]
    fn dates_are_in_2007_window() {
        let g = RowGen::new(Table::OrderLine, 100);
        let col = g.schema().index_of("ol_delivery_d").unwrap();
        for r in 0..100 {
            let v = dec_u64(&g.value(r, col));
            assert!((1_167_600_000..1_230_672_000).contains(&v));
        }
    }

    /// Date predicates must keep their selectivity at any scale (the
    /// Q1/Q6 cutoff sits at the window midpoint).
    #[test]
    fn date_selectivity_is_scale_independent() {
        let cutoff = 1_167_600_000 + 31_536_000;
        for rows in [500u64, 5000] {
            let g = RowGen::new(Table::OrderLine, rows);
            let col = g.schema().index_of("ol_delivery_d").unwrap();
            let late = (0..rows)
                .filter(|&r| dec_u64(&g.value(r, col)) > cutoff)
                .count() as f64
                / rows as f64;
            assert!((0.4..0.6).contains(&late), "selectivity {late} at {rows}");
        }
    }

    #[test]
    fn quantities_are_small() {
        let g = RowGen::new(Table::OrderLine, 100);
        let col = g.schema().index_of("ol_quantity").unwrap();
        for r in 0..100 {
            let v = dec_u64(&g.value(r, col));
            assert!((1..=50).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn row_bounds_checked() {
        let g = RowGen::new(Table::Item, 10);
        let _ = g.value(10, 0);
    }
}
