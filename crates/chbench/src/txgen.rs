//! TPC-C transaction mix generation (Payment + NewOrder, ~90 % of the
//! standard mix — the two types the paper simulates, §7.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of one Payment transaction: update a customer's balance and
/// the warehouse/district year-to-date totals, append a HISTORY row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Payment {
    /// Warehouse.
    pub w_id: u64,
    /// District within the warehouse.
    pub d_id: u64,
    /// Customer row index.
    pub c_row: u64,
    /// Amount in cents.
    pub amount: u64,
}

/// Parameters of one NewOrder transaction: insert an order with `ol_cnt`
/// order lines, updating STOCK rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewOrder {
    /// Warehouse.
    pub w_id: u64,
    /// District within the warehouse.
    pub d_id: u64,
    /// Customer row index.
    pub c_row: u64,
    /// Item row index per order line.
    pub items: Vec<u64>,
    /// Stock row index per order line.
    pub stock_rows: Vec<u64>,
}

/// One transaction of the mix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Txn {
    /// A Payment transaction.
    Payment(Payment),
    /// A NewOrder transaction.
    NewOrder(NewOrder),
}

impl Txn {
    /// Short label for reporting.
    pub fn label(&self) -> &'static str {
        match self {
            Txn::Payment(_) => "payment",
            Txn::NewOrder(_) => "neworder",
        }
    }

    /// The transaction's home warehouse — the routing key of a sharded
    /// deployment.
    pub fn home_warehouse(&self) -> u64 {
        match self {
            Txn::Payment(p) => p.w_id,
            Txn::NewOrder(no) => no.w_id,
        }
    }
}

/// How a transaction's customer and stock rows are drawn relative to its
/// home warehouse.
///
/// The default, [`RemoteMix::Uniform`], draws them uniformly over the
/// whole population — at `k` equal shards that makes ≈ `(k−1)/k` of the
/// touches remote, wildly overstating cross-shard coordination compared
/// to the TPC-C specification. [`RemoteMix::Tpcc`] implements the
/// standard's remote-warehouse probabilities (§2.4.1.5 / §2.5.1.2): each
/// NewOrder line's supplying warehouse is remote with probability 1 %,
/// and a Payment's customer is homed at a remote warehouse with
/// probability 15 %; otherwise rows come from the home warehouse's
/// stripe of the population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RemoteMix {
    /// Customer/stock rows uniform over the global population (the
    /// original behavior; streams generated this way are bit-identical
    /// to those of earlier revisions).
    Uniform,
    /// TPC-C remote-warehouse probabilities.
    Tpcc {
        /// Probability a Payment pays a customer of a remote warehouse
        /// (the spec's 15 %).
        payment: f64,
        /// Probability an order line's supplying warehouse is remote
        /// (the spec's 1 %).
        neworder: f64,
    },
}

impl RemoteMix {
    /// The TPC-C specification values: 15 % remote Payment customers,
    /// 1 % remote NewOrder supply warehouses.
    pub const TPCC: RemoteMix = RemoteMix::Tpcc {
        payment: 0.15,
        neworder: 0.01,
    };

    /// A fully warehouse-local mix (0 % remote everywhere): every
    /// customer and stock row comes from the home warehouse's stripe, so
    /// a warehouse-partitioned deployment never touches a foreign shard.
    pub const LOCAL: RemoteMix = RemoteMix::Tpcc {
        payment: 0.0,
        neworder: 0.0,
    };
}

/// Deterministic transaction-mix generator.
///
/// The mix follows TPC-C's relative frequencies for the two simulated
/// types: Payment : NewOrder ≈ 43 : 45, i.e. ~48.9 % Payment.
#[derive(Debug)]
pub struct TxnGen {
    rng: StdRng,
    wh_start: u64,
    warehouses: u64,
    customers: u64,
    items: u64,
    stocks: u64,
    /// Remote-warehouse behavior; [`RemoteMix::Uniform`] by default.
    mix: RemoteMix,
    /// Global warehouse population the customer/stock stripes divide
    /// into (set alongside a non-uniform `mix`; equals the home range by
    /// default).
    wh_global: u64,
}

impl TxnGen {
    /// Payment share of the generated mix (Payment vs NewOrder).
    pub const PAYMENT_SHARE: f64 = 43.0 / 88.0;

    /// Creates a generator over a population of the given sizes.
    ///
    /// # Panics
    ///
    /// Panics if any population is zero.
    pub fn new(seed: u64, warehouses: u64, customers: u64, items: u64, stocks: u64) -> TxnGen {
        TxnGen::with_warehouse_range(seed, 0..warehouses, customers, items, stocks)
    }

    /// Creates a generator whose home warehouses fall in `warehouses` —
    /// the shard-local load of a warehouse-range-partitioned deployment.
    /// Customer/item/stock indices still span the given (global or
    /// shard-local) populations.
    ///
    /// # Panics
    ///
    /// Panics if any population (or the warehouse range) is empty.
    pub fn with_warehouse_range(
        seed: u64,
        warehouses: std::ops::Range<u64>,
        customers: u64,
        items: u64,
        stocks: u64,
    ) -> TxnGen {
        assert!(
            warehouses.start < warehouses.end && customers > 0 && items > 0 && stocks > 0,
            "empty population"
        );
        let wh_global = warehouses.end;
        TxnGen {
            rng: StdRng::seed_from_u64(seed),
            wh_start: warehouses.start,
            warehouses: warehouses.end - warehouses.start,
            customers,
            items,
            stocks,
            mix: RemoteMix::Uniform,
            wh_global,
        }
    }

    /// Switches the generator to `mix` over a global population of
    /// `global_warehouses` (the stripe count customer/stock rows divide
    /// into — a warehouse-range generator of a sharded deployment must
    /// pass the *deployment-wide* count, not its own range).
    ///
    /// # Panics
    ///
    /// Panics if `global_warehouses` does not cover the home range, if a
    /// `Tpcc` probability is outside `[0, 1]`, or — for a `Tpcc` mix —
    /// if the customer or stock population is smaller than
    /// `global_warehouses` (an empty warehouse stripe would make the
    /// "home" guarantee unsatisfiable: there would be no home row to
    /// draw).
    pub fn with_remote_mix(mut self, mix: RemoteMix, global_warehouses: u64) -> TxnGen {
        assert!(
            global_warehouses >= self.wh_start + self.warehouses,
            "{global_warehouses} global warehouses cannot cover home range {:?}",
            self.warehouse_range()
        );
        if let RemoteMix::Tpcc { payment, neworder } = mix {
            assert!(
                (0.0..=1.0).contains(&payment) && (0.0..=1.0).contains(&neworder),
                "remote probabilities must be in [0, 1]"
            );
            // The floor split gives every warehouse a non-empty stripe
            // iff the population covers the warehouse count; anything
            // smaller would silently break the home/remote guarantee.
            assert!(
                self.customers >= global_warehouses && self.stocks >= global_warehouses,
                "populations ({} customers, {} stocks) must cover {global_warehouses} \
                 warehouse stripes",
                self.customers,
                self.stocks
            );
        }
        self.mix = mix;
        self.wh_global = global_warehouses;
        self
    }

    /// The remote-warehouse mix in effect.
    pub fn remote_mix(&self) -> RemoteMix {
        self.mix
    }

    /// The half-open home-warehouse range this generator draws from.
    pub fn warehouse_range(&self) -> std::ops::Range<u64> {
        self.wh_start..self.wh_start + self.warehouses
    }

    /// Warehouse `w`'s stripe of an `n`-row population under the floor
    /// split into `wh_global` stripes (the split `build_partitioned`
    /// uses, so "the home warehouse's rows" means the same rows on every
    /// deployment).
    fn stripe(&self, w: u64, n: u64) -> std::ops::Range<u64> {
        let start = (w * n) / self.wh_global;
        let end = ((w + 1) * n) / self.wh_global;
        start..end
    }

    /// A row of `n`-row population anchored at warehouse `home`, remote
    /// with probability `p` (drawn from a uniformly-chosen *other*
    /// warehouse's stripe). Stripes are non-empty by the
    /// [`TxnGen::with_remote_mix`] population assertion, so a `p = 0`
    /// draw *never* leaves the home warehouse.
    fn striped_row(&mut self, home: u64, n: u64, p: f64) -> u64 {
        let w = if self.wh_global > 1 && p > 0.0 && self.rng.random_bool(p) {
            // Uniform over the other warehouses.
            let other = self.rng.random_range(0..self.wh_global - 1);
            other + u64::from(other >= home)
        } else {
            home
        };
        let stripe = self.stripe(w, n);
        debug_assert!(!stripe.is_empty(), "population below warehouse count");
        stripe.start + self.rng.random_range(0..stripe.end - stripe.start)
    }

    /// Generates the next transaction of the mix.
    ///
    /// The [`RemoteMix::Uniform`] paths draw random values in exactly the
    /// original order, so uniform streams are bit-identical per seed to
    /// those of earlier revisions; the [`RemoteMix::Tpcc`] paths are a
    /// separate (also deterministic) draw sequence.
    pub fn next_txn(&mut self) -> Txn {
        if self.rng.random_bool(Self::PAYMENT_SHARE) {
            match self.mix {
                RemoteMix::Uniform => Txn::Payment(Payment {
                    w_id: self.wh_start + self.rng.random_range(0..self.warehouses),
                    d_id: self.rng.random_range(0..10),
                    c_row: self.rng.random_range(0..self.customers),
                    amount: self.rng.random_range(100..500_000),
                }),
                RemoteMix::Tpcc { payment, .. } => {
                    let w_id = self.wh_start + self.rng.random_range(0..self.warehouses);
                    let d_id = self.rng.random_range(0..10);
                    let c_row = self.striped_row(w_id, self.customers, payment);
                    Txn::Payment(Payment {
                        w_id,
                        d_id,
                        c_row,
                        amount: self.rng.random_range(100..500_000),
                    })
                }
            }
        } else {
            match self.mix {
                RemoteMix::Uniform => {
                    let ol_cnt = (self.rng.random_range(5..=15) as u64).min(self.stocks) as usize;
                    // Stock rows must be distinct within one order (TPC-C
                    // orders distinct items): a repeated row would be
                    // updated twice at one timestamp.
                    let mut stock_rows = Vec::with_capacity(ol_cnt);
                    while stock_rows.len() < ol_cnt {
                        let s = self.rng.random_range(0..self.stocks);
                        if !stock_rows.contains(&s) {
                            stock_rows.push(s);
                        }
                    }
                    Txn::NewOrder(NewOrder {
                        w_id: self.wh_start + self.rng.random_range(0..self.warehouses),
                        d_id: self.rng.random_range(0..10),
                        c_row: self.rng.random_range(0..self.customers),
                        items: (0..ol_cnt)
                            .map(|_| self.rng.random_range(0..self.items))
                            .collect(),
                        stock_rows,
                    })
                }
                RemoteMix::Tpcc { neworder, .. } => {
                    let w_id = self.wh_start + self.rng.random_range(0..self.warehouses);
                    let d_id = self.rng.random_range(0..10);
                    // TPC-C NewOrder customers are always home; the
                    // remote probability applies per order line to the
                    // supplying warehouse only (§2.4.1.5).
                    let c_row = self.striped_row(w_id, self.customers, 0.0);
                    // The distinct-row loop below must be able to find
                    // `ol_cnt` rows among those the mix can actually
                    // reach: only the home stripe at probability 0, only
                    // the remote stripes at probability 1, everything in
                    // between (stripes are non-empty by the
                    // `with_remote_mix` population assertion).
                    let home_stocks = {
                        let s = self.stripe(w_id, self.stocks);
                        s.end - s.start
                    };
                    let reachable = if self.wh_global <= 1 || neworder <= 0.0 {
                        home_stocks
                    } else if neworder >= 1.0 {
                        self.stocks - home_stocks
                    } else {
                        self.stocks
                    };
                    let ol_cnt =
                        (self.rng.random_range(5..=15) as u64).min(reachable.max(1)) as usize;
                    let mut stock_rows = Vec::with_capacity(ol_cnt);
                    while stock_rows.len() < ol_cnt {
                        let s = self.striped_row(w_id, self.stocks, neworder);
                        if !stock_rows.contains(&s) {
                            stock_rows.push(s);
                        }
                    }
                    Txn::NewOrder(NewOrder {
                        w_id,
                        d_id,
                        c_row,
                        items: (0..ol_cnt)
                            .map(|_| self.rng.random_range(0..self.items))
                            .collect(),
                        stock_rows,
                    })
                }
            }
        }
    }

    /// Generates a batch of `n` transactions.
    pub fn batch(&mut self, n: usize) -> Vec<Txn> {
        (0..n).map(|_| self.next_txn()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen() -> TxnGen {
        TxnGen::new(7, 4, 1000, 5000, 5000)
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = gen().batch(50);
        let b = gen().batch(50);
        assert_eq!(a, b);
    }

    #[test]
    fn mix_is_roughly_half_payment() {
        let batch = gen().batch(10_000);
        let payments = batch.iter().filter(|t| t.label() == "payment").count();
        let share = payments as f64 / 10_000.0;
        assert!(
            (share - TxnGen::PAYMENT_SHARE).abs() < 0.03,
            "payment share {share}"
        );
    }

    #[test]
    fn neworder_has_5_to_15_lines() {
        for t in gen().batch(500) {
            if let Txn::NewOrder(no) = t {
                assert!((5..=15).contains(&no.items.len()));
                assert_eq!(no.items.len(), no.stock_rows.len());
            }
        }
    }

    #[test]
    fn indices_respect_population() {
        for t in gen().batch(500) {
            match t {
                Txn::Payment(p) => {
                    assert!(p.w_id < 4);
                    assert!(p.d_id < 10);
                    assert!(p.c_row < 1000);
                }
                Txn::NewOrder(no) => {
                    assert!(no.items.iter().all(|&i| i < 5000));
                    assert!(no.stock_rows.iter().all(|&s| s < 5000));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty population")]
    fn zero_population_panics() {
        let _ = TxnGen::new(0, 0, 1, 1, 1);
    }

    #[test]
    fn warehouse_range_bounds_home_warehouses() {
        let mut g = TxnGen::with_warehouse_range(3, 4..6, 1000, 5000, 5000);
        assert_eq!(g.warehouse_range(), 4..6);
        for t in g.batch(300) {
            assert!((4..6).contains(&t.home_warehouse()), "{t:?}");
        }
    }

    #[test]
    fn full_range_equals_plain_constructor() {
        let a = TxnGen::new(9, 4, 1000, 5000, 5000).batch(100);
        let b = TxnGen::with_warehouse_range(9, 0..4, 1000, 5000, 5000).batch(100);
        assert_eq!(a, b);
    }

    /// The stripe of a warehouse under the floor split, for asserting
    /// where TPC-C-mix rows land.
    fn stripe(w: u64, n: u64, wh: u64) -> std::ops::Range<u64> {
        (w * n) / wh..((w + 1) * n) / wh
    }

    #[test]
    fn tpcc_mix_is_deterministic_per_seed() {
        let mk = || {
            TxnGen::new(7, 8, 4000, 5000, 10_000)
                .with_remote_mix(RemoteMix::TPCC, 8)
                .batch(200)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn tpcc_mix_hits_the_spec_remote_rates() {
        let mut g = TxnGen::new(3, 8, 4000, 5000, 10_000).with_remote_mix(RemoteMix::TPCC, 8);
        let (mut pay, mut pay_remote) = (0u64, 0u64);
        let (mut lines, mut line_remote) = (0u64, 0u64);
        for t in g.batch(20_000) {
            match t {
                Txn::Payment(p) => {
                    pay += 1;
                    if !stripe(p.w_id, 4000, 8).contains(&p.c_row) {
                        pay_remote += 1;
                    }
                }
                Txn::NewOrder(no) => {
                    for s in &no.stock_rows {
                        lines += 1;
                        if !stripe(no.w_id, 10_000, 8).contains(s) {
                            line_remote += 1;
                        }
                    }
                    // Customers are always home in NewOrder.
                    assert!(
                        stripe(no.w_id, 4000, 8).contains(&no.c_row),
                        "NewOrder customer left the home warehouse"
                    );
                }
            }
        }
        let pay_rate = pay_remote as f64 / pay as f64;
        let line_rate = line_remote as f64 / lines as f64;
        assert!((pay_rate - 0.15).abs() < 0.02, "payment remote {pay_rate}");
        assert!((line_rate - 0.01).abs() < 0.005, "line remote {line_rate}");
    }

    #[test]
    fn local_mix_never_leaves_the_home_warehouse() {
        let mut g = TxnGen::new(5, 8, 4000, 5000, 10_000).with_remote_mix(RemoteMix::LOCAL, 8);
        for t in g.batch(2000) {
            match t {
                Txn::Payment(p) => {
                    assert!(stripe(p.w_id, 4000, 8).contains(&p.c_row));
                }
                Txn::NewOrder(no) => {
                    assert!(stripe(no.w_id, 4000, 8).contains(&no.c_row));
                    for s in &no.stock_rows {
                        assert!(stripe(no.w_id, 10_000, 8).contains(s));
                    }
                }
            }
        }
    }

    #[test]
    fn uniform_mix_is_the_default_and_unchanged() {
        // `with_remote_mix(Uniform, ..)` must not perturb the draw
        // sequence: the knob's default is bit-compatible.
        let a = TxnGen::new(9, 4, 1000, 5000, 5000).batch(100);
        let b = TxnGen::new(9, 4, 1000, 5000, 5000)
            .with_remote_mix(RemoteMix::Uniform, 4)
            .batch(100);
        assert_eq!(a, b);
        assert_eq!(
            TxnGen::new(9, 4, 1000, 5000, 5000).remote_mix(),
            RemoteMix::Uniform
        );
    }

    #[test]
    #[should_panic(expected = "cannot cover")]
    fn global_warehouses_must_cover_home_range() {
        let _ = TxnGen::with_warehouse_range(3, 4..6, 1000, 5000, 5000)
            .with_remote_mix(RemoteMix::TPCC, 4);
    }

    #[test]
    #[should_panic(expected = "must cover")]
    fn tpcc_mix_rejects_populations_below_the_warehouse_count() {
        // 4 customers over 8 warehouses would leave empty stripes: the
        // "home" guarantee would be unsatisfiable.
        let _ = TxnGen::new(3, 8, 4, 5000, 10_000).with_remote_mix(RemoteMix::TPCC, 8);
    }

    /// The `p = 1.0` boundary: every stock draw is remote, so the
    /// distinct-row loop is capped by the *remote* pool — it must
    /// terminate even when that pool is tiny.
    #[test]
    fn all_remote_neworder_with_tiny_remote_pool_terminates() {
        let mix = RemoteMix::Tpcc {
            payment: 1.0,
            neworder: 1.0,
        };
        let mut g = TxnGen::new(11, 2, 4, 50, 3).with_remote_mix(mix, 2);
        for t in g.batch(200) {
            if let Txn::NewOrder(no) = t {
                // Warehouse 1's stripe of 3 stocks is [1, 3): the remote
                // pool of a warehouse-1 order is the single row 0.
                assert!(!no.stock_rows.is_empty());
                for s in &no.stock_rows {
                    assert!(
                        !stripe(no.w_id, 3, 2).contains(s),
                        "p=1 must draw only remote stock"
                    );
                }
            }
        }
    }
}
