//! TPC-C transaction mix generation (Payment + NewOrder, ~90 % of the
//! standard mix — the two types the paper simulates, §7.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of one Payment transaction: update a customer's balance and
/// the warehouse/district year-to-date totals, append a HISTORY row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Payment {
    /// Warehouse.
    pub w_id: u64,
    /// District within the warehouse.
    pub d_id: u64,
    /// Customer row index.
    pub c_row: u64,
    /// Amount in cents.
    pub amount: u64,
}

/// Parameters of one NewOrder transaction: insert an order with `ol_cnt`
/// order lines, updating STOCK rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewOrder {
    /// Warehouse.
    pub w_id: u64,
    /// District within the warehouse.
    pub d_id: u64,
    /// Customer row index.
    pub c_row: u64,
    /// Item row index per order line.
    pub items: Vec<u64>,
    /// Stock row index per order line.
    pub stock_rows: Vec<u64>,
}

/// One transaction of the mix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Txn {
    /// A Payment transaction.
    Payment(Payment),
    /// A NewOrder transaction.
    NewOrder(NewOrder),
}

impl Txn {
    /// Short label for reporting.
    pub fn label(&self) -> &'static str {
        match self {
            Txn::Payment(_) => "payment",
            Txn::NewOrder(_) => "neworder",
        }
    }

    /// The transaction's home warehouse — the routing key of a sharded
    /// deployment.
    pub fn home_warehouse(&self) -> u64 {
        match self {
            Txn::Payment(p) => p.w_id,
            Txn::NewOrder(no) => no.w_id,
        }
    }
}

/// Deterministic transaction-mix generator.
///
/// The mix follows TPC-C's relative frequencies for the two simulated
/// types: Payment : NewOrder ≈ 43 : 45, i.e. ~48.9 % Payment.
#[derive(Debug)]
pub struct TxnGen {
    rng: StdRng,
    wh_start: u64,
    warehouses: u64,
    customers: u64,
    items: u64,
    stocks: u64,
}

impl TxnGen {
    /// Payment share of the generated mix (Payment vs NewOrder).
    pub const PAYMENT_SHARE: f64 = 43.0 / 88.0;

    /// Creates a generator over a population of the given sizes.
    ///
    /// # Panics
    ///
    /// Panics if any population is zero.
    pub fn new(seed: u64, warehouses: u64, customers: u64, items: u64, stocks: u64) -> TxnGen {
        TxnGen::with_warehouse_range(seed, 0..warehouses, customers, items, stocks)
    }

    /// Creates a generator whose home warehouses fall in `warehouses` —
    /// the shard-local load of a warehouse-range-partitioned deployment.
    /// Customer/item/stock indices still span the given (global or
    /// shard-local) populations.
    ///
    /// # Panics
    ///
    /// Panics if any population (or the warehouse range) is empty.
    pub fn with_warehouse_range(
        seed: u64,
        warehouses: std::ops::Range<u64>,
        customers: u64,
        items: u64,
        stocks: u64,
    ) -> TxnGen {
        assert!(
            warehouses.start < warehouses.end && customers > 0 && items > 0 && stocks > 0,
            "empty population"
        );
        TxnGen {
            rng: StdRng::seed_from_u64(seed),
            wh_start: warehouses.start,
            warehouses: warehouses.end - warehouses.start,
            customers,
            items,
            stocks,
        }
    }

    /// The half-open home-warehouse range this generator draws from.
    pub fn warehouse_range(&self) -> std::ops::Range<u64> {
        self.wh_start..self.wh_start + self.warehouses
    }

    /// Generates the next transaction of the mix.
    pub fn next_txn(&mut self) -> Txn {
        if self.rng.random_bool(Self::PAYMENT_SHARE) {
            Txn::Payment(Payment {
                w_id: self.wh_start + self.rng.random_range(0..self.warehouses),
                d_id: self.rng.random_range(0..10),
                c_row: self.rng.random_range(0..self.customers),
                amount: self.rng.random_range(100..500_000),
            })
        } else {
            let ol_cnt = (self.rng.random_range(5..=15) as u64).min(self.stocks) as usize;
            // Stock rows must be distinct within one order (TPC-C orders
            // distinct items): a repeated row would be updated twice at
            // one timestamp.
            let mut stock_rows = Vec::with_capacity(ol_cnt);
            while stock_rows.len() < ol_cnt {
                let s = self.rng.random_range(0..self.stocks);
                if !stock_rows.contains(&s) {
                    stock_rows.push(s);
                }
            }
            Txn::NewOrder(NewOrder {
                w_id: self.wh_start + self.rng.random_range(0..self.warehouses),
                d_id: self.rng.random_range(0..10),
                c_row: self.rng.random_range(0..self.customers),
                items: (0..ol_cnt)
                    .map(|_| self.rng.random_range(0..self.items))
                    .collect(),
                stock_rows,
            })
        }
    }

    /// Generates a batch of `n` transactions.
    pub fn batch(&mut self, n: usize) -> Vec<Txn> {
        (0..n).map(|_| self.next_txn()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen() -> TxnGen {
        TxnGen::new(7, 4, 1000, 5000, 5000)
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = gen().batch(50);
        let b = gen().batch(50);
        assert_eq!(a, b);
    }

    #[test]
    fn mix_is_roughly_half_payment() {
        let batch = gen().batch(10_000);
        let payments = batch.iter().filter(|t| t.label() == "payment").count();
        let share = payments as f64 / 10_000.0;
        assert!(
            (share - TxnGen::PAYMENT_SHARE).abs() < 0.03,
            "payment share {share}"
        );
    }

    #[test]
    fn neworder_has_5_to_15_lines() {
        for t in gen().batch(500) {
            if let Txn::NewOrder(no) = t {
                assert!((5..=15).contains(&no.items.len()));
                assert_eq!(no.items.len(), no.stock_rows.len());
            }
        }
    }

    #[test]
    fn indices_respect_population() {
        for t in gen().batch(500) {
            match t {
                Txn::Payment(p) => {
                    assert!(p.w_id < 4);
                    assert!(p.d_id < 10);
                    assert!(p.c_row < 1000);
                }
                Txn::NewOrder(no) => {
                    assert!(no.items.iter().all(|&i| i < 5000));
                    assert!(no.stock_rows.iter().all(|&s| s < 5000));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty population")]
    fn zero_population_panics() {
        let _ = TxnGen::new(0, 0, 1, 1, 1);
    }

    #[test]
    fn warehouse_range_bounds_home_warehouses() {
        let mut g = TxnGen::with_warehouse_range(3, 4..6, 1000, 5000, 5000);
        assert_eq!(g.warehouse_range(), 4..6);
        for t in g.batch(300) {
            assert!((4..6).contains(&t.home_warehouse()), "{t:?}");
        }
    }

    #[test]
    fn full_range_equals_plain_constructor() {
        let a = TxnGen::new(9, 4, 1000, 5000, 5000).batch(100);
        let b = TxnGen::with_warehouse_range(9, 0..4, 1000, 5000, 5000).batch(100);
        assert_eq!(a, b);
    }
}
