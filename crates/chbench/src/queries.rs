//! Column footprints of the 22 CH-benCHmark analytical queries.
//!
//! Each footprint lists the columns a query scans (selection, join,
//! grouping, and aggregation inputs). These sets drive the key-column
//! classification: the layout generator marks the union of the active
//! query subset's columns as key columns (Fig. 8(c,d): subset "Q1-k" means
//! queries Q1 through Qk).
//!
//! The footprints are reconstructed from the CH-benCHmark query text
//! (Cole et al., DBTest'11). Q1 touches exactly 4 columns and Q1–Q3
//! together touch ~32, matching the counts quoted in §7.2 of the paper.

use std::collections::BTreeMap;

use crate::schema::Table;

/// One query's scanned columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryFootprint {
    /// Query number, 1..=22.
    pub query: u8,
    /// Scanned columns (column names are globally unique in TPC-C).
    pub columns: Vec<&'static str>,
}

/// Footprints of Q1..Q22, in order.
pub fn query_footprints() -> Vec<QueryFootprint> {
    let q = |query: u8, columns: Vec<&'static str>| QueryFootprint { query, columns };
    vec![
        // Q1: pricing summary over ORDERLINE (aggregation-heavy).
        q(
            1,
            vec!["ol_number", "ol_quantity", "ol_amount", "ol_delivery_d"],
        ),
        // Q2: minimum-cost supplier join over ITEM/STOCK/SUPPLIER/NATION/REGION.
        q(
            2,
            vec![
                "i_id",
                "i_name",
                "i_data",
                "su_suppkey",
                "su_name",
                "su_address",
                "su_phone",
                "su_comment",
                "su_nationkey",
                "s_i_id",
                "s_w_id",
                "s_quantity",
                "n_nationkey",
                "n_name",
                "n_regionkey",
                "r_regionkey",
                "r_name",
            ],
        ),
        // Q3: unshipped orders of high-value customers.
        q(
            3,
            vec![
                "c_state",
                "c_id",
                "c_w_id",
                "c_d_id",
                "no_w_id",
                "no_d_id",
                "no_o_id",
                "o_id",
                "o_c_id",
                "o_w_id",
                "o_d_id",
                "o_entry_d",
                "ol_o_id",
                "ol_w_id",
                "ol_d_id",
                "ol_amount",
            ],
        ),
        // Q4: order priority counting.
        q(
            4,
            vec![
                "o_id",
                "o_d_id",
                "o_w_id",
                "o_entry_d",
                "o_ol_cnt",
                "ol_o_id",
                "ol_d_id",
                "ol_w_id",
                "ol_delivery_d",
            ],
        ),
        // Q5: local supplier revenue by nation.
        q(
            5,
            vec![
                "c_id",
                "c_d_id",
                "c_w_id",
                "c_state",
                "o_id",
                "o_d_id",
                "o_w_id",
                "o_c_id",
                "o_entry_d",
                "ol_o_id",
                "ol_d_id",
                "ol_w_id",
                "ol_amount",
                "ol_supply_w_id",
                "ol_i_id",
                "s_i_id",
                "s_w_id",
                "su_suppkey",
                "su_nationkey",
                "n_nationkey",
                "n_name",
                "n_regionkey",
                "r_regionkey",
                "r_name",
            ],
        ),
        // Q6: forecast revenue change (selection-heavy).
        q(6, vec!["ol_delivery_d", "ol_quantity", "ol_amount"]),
        // Q7: bi-national volume shipping.
        q(
            7,
            vec![
                "su_suppkey",
                "su_nationkey",
                "s_i_id",
                "s_w_id",
                "ol_supply_w_id",
                "ol_i_id",
                "ol_o_id",
                "ol_d_id",
                "ol_w_id",
                "ol_delivery_d",
                "ol_amount",
                "o_id",
                "o_d_id",
                "o_w_id",
                "o_c_id",
                "c_id",
                "c_d_id",
                "c_w_id",
                "c_state",
                "n_nationkey",
                "n_name",
            ],
        ),
        // Q8: national market share.
        q(
            8,
            vec![
                "i_id",
                "i_data",
                "su_suppkey",
                "su_nationkey",
                "s_i_id",
                "s_w_id",
                "ol_i_id",
                "ol_supply_w_id",
                "ol_o_id",
                "ol_d_id",
                "ol_w_id",
                "ol_amount",
                "o_id",
                "o_d_id",
                "o_w_id",
                "o_entry_d",
                "o_c_id",
                "c_id",
                "c_d_id",
                "c_w_id",
                "n_nationkey",
                "n_regionkey",
                "n_name",
                "r_regionkey",
                "r_name",
            ],
        ),
        // Q9: product-type profit (join-heavy).
        q(
            9,
            vec![
                "i_id",
                "i_data",
                "su_suppkey",
                "su_nationkey",
                "s_i_id",
                "s_w_id",
                "ol_i_id",
                "ol_supply_w_id",
                "ol_o_id",
                "ol_d_id",
                "ol_w_id",
                "ol_amount",
                "o_id",
                "o_d_id",
                "o_w_id",
                "o_entry_d",
                "n_nationkey",
                "n_name",
            ],
        ),
        // Q10: returned-item reporting.
        q(
            10,
            vec![
                "c_id",
                "c_d_id",
                "c_w_id",
                "c_last",
                "c_city",
                "c_phone",
                "o_id",
                "o_d_id",
                "o_w_id",
                "o_c_id",
                "o_entry_d",
                "o_carrier_id",
                "ol_o_id",
                "ol_d_id",
                "ol_w_id",
                "ol_amount",
                "ol_delivery_d",
                "n_nationkey",
                "n_name",
            ],
        ),
        // Q11: important stock identification.
        q(
            11,
            vec![
                "s_i_id",
                "s_w_id",
                "s_order_cnt",
                "su_suppkey",
                "su_nationkey",
                "n_nationkey",
                "n_name",
            ],
        ),
        // Q12: shipping-mode priority.
        q(
            12,
            vec![
                "o_id",
                "o_d_id",
                "o_w_id",
                "o_entry_d",
                "o_carrier_id",
                "o_ol_cnt",
                "ol_o_id",
                "ol_d_id",
                "ol_w_id",
                "ol_delivery_d",
            ],
        ),
        // Q13: customer order-count distribution.
        q(
            13,
            vec![
                "c_id",
                "c_d_id",
                "c_w_id",
                "o_id",
                "o_d_id",
                "o_w_id",
                "o_c_id",
                "o_carrier_id",
            ],
        ),
        // Q14: promotion-effect revenue share.
        q(
            14,
            vec!["i_id", "i_data", "ol_i_id", "ol_amount", "ol_delivery_d"],
        ),
        // Q15: top supplier revenue.
        q(
            15,
            vec![
                "s_i_id",
                "s_w_id",
                "ol_i_id",
                "ol_supply_w_id",
                "ol_amount",
                "ol_delivery_d",
                "su_suppkey",
                "su_name",
                "su_address",
                "su_phone",
            ],
        ),
        // Q16: parts/supplier relationship counting.
        q(
            16,
            vec![
                "i_id",
                "i_data",
                "i_name",
                "i_price",
                "s_i_id",
                "s_w_id",
                "su_suppkey",
                "su_comment",
            ],
        ),
        // Q17: small-quantity-order revenue.
        q(
            17,
            vec!["i_id", "i_data", "ol_i_id", "ol_quantity", "ol_amount"],
        ),
        // Q18: large-volume customers.
        q(
            18,
            vec![
                "c_id",
                "c_d_id",
                "c_w_id",
                "c_last",
                "o_id",
                "o_d_id",
                "o_w_id",
                "o_c_id",
                "o_entry_d",
                "o_ol_cnt",
                "ol_o_id",
                "ol_d_id",
                "ol_w_id",
                "ol_amount",
            ],
        ),
        // Q19: discounted-revenue (brand/quantity filter).
        q(
            19,
            vec![
                "i_id",
                "i_data",
                "i_price",
                "ol_i_id",
                "ol_quantity",
                "ol_amount",
                "ol_w_id",
            ],
        ),
        // Q20: potential part promotion.
        q(
            20,
            vec![
                "i_id",
                "i_data",
                "s_i_id",
                "s_w_id",
                "s_quantity",
                "ol_i_id",
                "ol_delivery_d",
                "ol_quantity",
                "su_suppkey",
                "su_name",
                "su_address",
                "su_nationkey",
                "n_nationkey",
                "n_name",
            ],
        ),
        // Q21: late-delivery suppliers.
        q(
            21,
            vec![
                "su_suppkey",
                "su_name",
                "su_nationkey",
                "s_i_id",
                "s_w_id",
                "ol_o_id",
                "ol_d_id",
                "ol_w_id",
                "ol_i_id",
                "ol_delivery_d",
                "o_id",
                "o_d_id",
                "o_w_id",
                "o_entry_d",
                "n_nationkey",
                "n_name",
            ],
        ),
        // Q22: global sales opportunity.
        q(
            22,
            vec![
                "c_id",
                "c_d_id",
                "c_w_id",
                "c_state",
                "c_phone",
                "c_balance",
                "o_id",
                "o_d_id",
                "o_w_id",
                "o_c_id",
            ],
        ),
    ]
}

/// The union of columns scanned by queries `1..=upto`, grouped by table.
pub fn key_columns_upto(upto: u8) -> BTreeMap<Table, Vec<&'static str>> {
    key_columns_of(&(1..=upto).collect::<Vec<u8>>())
}

/// The union of columns scanned by the given queries, grouped by table.
///
/// # Panics
///
/// Panics if a query number is outside `1..=22`.
pub fn key_columns_of(queries: &[u8]) -> BTreeMap<Table, Vec<&'static str>> {
    let footprints = query_footprints();
    let mut map: BTreeMap<Table, Vec<&'static str>> = BTreeMap::new();
    for &qn in queries {
        assert!((1..=22).contains(&qn), "query Q{qn} out of range");
        let fp = &footprints[(qn - 1) as usize];
        for &col in &fp.columns {
            let table = Table::of_column(col)
                .unwrap_or_else(|| panic!("footprint references unknown column {col}"));
            let cols = map.entry(table).or_default();
            if !cols.contains(&col) {
                cols.push(col);
            }
        }
    }
    map
}

/// Number of queries in `queries` that scan `column` — the scan-frequency
/// weight used for the aggregate PIM effective bandwidth (§4.2 observes
/// e.g. that eight queries analyse `id`-like columns but only three analyse
/// `state`-like ones).
pub fn scan_weight(column: &str, queries: &[u8]) -> f64 {
    let footprints = query_footprints();
    queries
        .iter()
        .filter(|&&qn| footprints[(qn - 1) as usize].columns.contains(&column))
        .count() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_two_queries() {
        let fps = query_footprints();
        assert_eq!(fps.len(), 22);
        for (i, fp) in fps.iter().enumerate() {
            assert_eq!(fp.query as usize, i + 1);
            assert!(!fp.columns.is_empty());
        }
    }

    /// §7.2: "the subset Q1-1 contains only 4 key columns, while the
    /// subset Q1-3 contains 32 key columns" — we land on 4 and ~32.
    #[test]
    fn subset_key_counts_match_paper() {
        let q1: usize = key_columns_upto(1).values().map(Vec::len).sum();
        assert_eq!(q1, 4);
        let q3: usize = key_columns_upto(3).values().map(Vec::len).sum();
        assert!((28..=38).contains(&q3), "Q1-3 key count {q3}");
    }

    #[test]
    fn all_footprint_columns_exist() {
        for fp in query_footprints() {
            for col in fp.columns {
                assert!(
                    Table::of_column(col).is_some(),
                    "Q{} references unknown column {col}",
                    fp.query
                );
            }
        }
    }

    #[test]
    fn q1_is_orderline_only() {
        let keys = key_columns_upto(1);
        assert_eq!(keys.len(), 1);
        assert!(keys.contains_key(&Table::OrderLine));
    }

    #[test]
    fn q6_is_selection_heavy_three_columns() {
        let keys = key_columns_of(&[6]);
        assert_eq!(keys[&Table::OrderLine].len(), 3);
    }

    #[test]
    fn weights_count_queries() {
        let all: Vec<u8> = (1..=22).collect();
        // ol_amount is one of the most scanned columns.
        assert!(scan_weight("ol_amount", &all) >= 8.0);
        // ol_dist_info is scanned by no query.
        assert_eq!(scan_weight("ol_dist_info", &all), 0.0);
        // Restricting the subset reduces the weight.
        assert_eq!(scan_weight("ol_amount", &[1]), 1.0);
    }

    #[test]
    fn key_columns_accumulate_monotonically() {
        let mut last = 0usize;
        for upto in 1..=22u8 {
            let n: usize = key_columns_upto(upto).values().map(Vec::len).sum();
            assert!(n >= last);
            last = n;
        }
        assert!(last > 40, "ALL key columns = {last}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_query_number_panics() {
        let _ = key_columns_of(&[23]);
    }
}
