//! The CH-benCHmark workload substrate for PUSHtap (§7.1).
//!
//! CH-benCHmark (Cole et al., DBTest'11) combines TPC-C (OLTP) and TPC-H
//! (OLAP) over one shared schema. This crate provides:
//!
//! * [`Table`] — the twelve tables with the paper's row counts and the
//!   fixed-width column encodings ([`Table::schema`]);
//! * [`query_footprints`]/[`key_columns_of`]/[`scan_weight`] — the column
//!   footprints of analytical queries Q1..Q22, which drive the key-column
//!   classification of the unified format (Fig. 8);
//! * [`RowGen`] — deterministic, random-access data generation;
//! * [`TxnGen`] — the Payment/NewOrder transaction mix (~90 % of TPC-C);
//! * [`htapbench`] — a second, HTAPBench-style workload for the format
//!   generality experiment.
//!
//! # Examples
//!
//! ```
//! use pushtap_chbench::{key_columns_upto, schema_with_keys, Table};
//! use pushtap_format::compact_layout;
//!
//! // Build the unified layout of ORDERLINE with Q1's columns as keys.
//! let keys = key_columns_upto(1);
//! let schema = schema_with_keys(Table::OrderLine, &keys[&Table::OrderLine]);
//! let layout = compact_layout(&schema, 8, 0.6)?;
//! assert!(!layout.parts().is_empty());
//! # Ok::<(), pushtap_format::LayoutError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod htapbench;

mod gen;
mod queries;
mod schema;
mod txgen;

pub use gen::{dec_u64, enc_text, enc_u64, RowGen};
pub use queries::{
    key_columns_of, key_columns_upto, query_footprints, scan_weight, QueryFootprint,
};
pub use schema::{
    database_bytes, schema_with_keys, Partitioning, Table, ALL_TABLES, MAX_KEY_WIDTH,
};
pub use txgen::{NewOrder, Payment, RemoteMix, Txn, TxnGen};
