//! The CH-benCHmark schema: the nine TPC-C tables plus the three TPC-H
//! side tables (SUPPLIER/NATION/REGION) that CH-benCHmark adds.
//!
//! Column widths are fixed-point encodings of the TPC-C/CH column types
//! (chars at one byte per char, money as 8-byte integers, dates as 8-byte
//! timestamps). Variable-width text columns are stored at their maximum
//! width — the paper handles variable width "using traditional storage
//! methods" (§4.1.2) and so do we. The widest column is 152 B and the
//! narrowest 1 B, matching the paper's "column width varies from 2 bytes
//! to 152 bytes" (§8) at byte resolution.
//!
//! All columns start as [`ColumnKind::Normal`]; the key set is derived
//! from an OLAP query subset via [`crate::queries`].

use pushtap_format::{Column, TableSchema};

/// How a table is distributed across the shards of a scale-out
/// deployment (see [`Table::partitioning`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Partitioning {
    /// Partitioned by home warehouse: each shard owns a contiguous
    /// warehouse range and the corresponding slice of the table.
    ByWarehouse,
    /// Replicated in full on every shard (read-mostly dimension data).
    Replicated,
}

/// Table identifiers of the CH-benCHmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Table {
    /// WAREHOUSE.
    Warehouse,
    /// DISTRICT.
    District,
    /// CUSTOMER.
    Customer,
    /// HISTORY.
    History,
    /// NEWORDER.
    NewOrder,
    /// ORDER.
    Order,
    /// ORDERLINE.
    OrderLine,
    /// ITEM.
    Item,
    /// STOCK.
    Stock,
    /// SUPPLIER (CH-benCHmark addition).
    Supplier,
    /// NATION (CH-benCHmark addition).
    Nation,
    /// REGION (CH-benCHmark addition).
    Region,
}

/// All tables in declaration order.
pub const ALL_TABLES: [Table; 12] = [
    Table::Warehouse,
    Table::District,
    Table::Customer,
    Table::History,
    Table::NewOrder,
    Table::Order,
    Table::OrderLine,
    Table::Item,
    Table::Stock,
    Table::Supplier,
    Table::Nation,
    Table::Region,
];

impl Table {
    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Table::Warehouse => "warehouse",
            Table::District => "district",
            Table::Customer => "customer",
            Table::History => "history",
            Table::NewOrder => "neworder",
            Table::Order => "order",
            Table::OrderLine => "orderline",
            Table::Item => "item",
            Table::Stock => "stock",
            Table::Supplier => "supplier",
            Table::Nation => "nation",
            Table::Region => "region",
        }
    }

    /// Row count at the paper's full scale (§7.1: ITEM 20M, STOCK 20M,
    /// CUSTOMER 6M, ORDER 6M, ORDERLINE 60M, NEWORDER 60M, HISTORY 6M;
    /// 200 warehouses give 6M customers at 30k each).
    pub fn rows_full_scale(self) -> u64 {
        match self {
            Table::Warehouse => 200,
            Table::District => 2_000,
            Table::Customer => 6_000_000,
            Table::History => 6_000_000,
            Table::NewOrder => 60_000_000,
            Table::Order => 6_000_000,
            Table::OrderLine => 60_000_000,
            Table::Item => 20_000_000,
            Table::Stock => 20_000_000,
            Table::Supplier => 10_000,
            Table::Nation => 62,
            Table::Region => 5,
        }
    }

    /// Row count at a fractional `scale` (≥ 1 row).
    pub fn rows_at_scale(self, scale: f64) -> u64 {
        assert!(scale > 0.0, "scale must be positive");
        ((self.rows_full_scale() as f64 * scale).round() as u64).max(1)
    }

    /// How a sharded deployment distributes this table (the classic
    /// TPC-C/CH split): warehouse-anchored fact tables are partitioned
    /// across shards, read-mostly dimension tables are replicated to
    /// every shard so joins stay shard-local.
    pub fn partitioning(self) -> Partitioning {
        match self {
            Table::Warehouse
            | Table::District
            | Table::Customer
            | Table::History
            | Table::NewOrder
            | Table::Order
            | Table::OrderLine
            | Table::Stock => Partitioning::ByWarehouse,
            Table::Item | Table::Supplier | Table::Nation | Table::Region => {
                Partitioning::Replicated
            }
        }
    }

    /// The schema of this table, with every column initially Normal.
    pub fn schema(self) -> TableSchema {
        let n = |name: &'static str, w: u32| Column::normal(name, w);
        let cols: Vec<Column> = match self {
            Table::Warehouse => vec![
                n("w_id", 4),
                n("w_name", 10),
                n("w_street_1", 20),
                n("w_street_2", 20),
                n("w_city", 20),
                n("w_state", 2),
                n("w_zip", 9),
                n("w_tax", 4),
                n("w_ytd", 8),
            ],
            Table::District => vec![
                n("d_id", 1),
                n("d_w_id", 4),
                n("d_name", 10),
                n("d_street_1", 20),
                n("d_street_2", 20),
                n("d_city", 20),
                n("d_state", 2),
                n("d_zip", 9),
                n("d_tax", 4),
                n("d_ytd", 8),
                n("d_next_o_id", 4),
            ],
            Table::Customer => vec![
                n("c_id", 4),
                n("c_d_id", 1),
                n("c_w_id", 4),
                n("c_first", 16),
                n("c_middle", 2),
                n("c_last", 16),
                n("c_street_1", 20),
                n("c_street_2", 20),
                n("c_city", 20),
                n("c_state", 2),
                n("c_zip", 9),
                n("c_phone", 16),
                n("c_since", 8),
                n("c_credit", 2),
                n("c_credit_lim", 8),
                n("c_discount", 4),
                n("c_balance", 8),
                n("c_ytd_payment", 8),
                n("c_payment_cnt", 2),
                n("c_delivery_cnt", 2),
                n("c_data", 152),
            ],
            Table::History => vec![
                n("h_c_id", 4),
                n("h_c_d_id", 1),
                n("h_c_w_id", 4),
                n("h_d_id", 1),
                n("h_w_id", 4),
                n("h_date", 8),
                n("h_amount", 4),
                n("h_data", 24),
            ],
            Table::NewOrder => vec![n("no_o_id", 4), n("no_d_id", 1), n("no_w_id", 4)],
            Table::Order => vec![
                n("o_id", 4),
                n("o_d_id", 1),
                n("o_w_id", 4),
                n("o_c_id", 4),
                n("o_entry_d", 8),
                n("o_carrier_id", 1),
                n("o_ol_cnt", 1),
                n("o_all_local", 1),
            ],
            Table::OrderLine => vec![
                n("ol_o_id", 4),
                n("ol_d_id", 1),
                n("ol_w_id", 4),
                n("ol_number", 1),
                n("ol_i_id", 4),
                n("ol_supply_w_id", 4),
                n("ol_delivery_d", 8),
                n("ol_quantity", 2),
                n("ol_amount", 8),
                n("ol_dist_info", 24),
            ],
            Table::Item => vec![
                n("i_id", 4),
                n("i_im_id", 4),
                n("i_name", 24),
                n("i_price", 4),
                n("i_data", 50),
            ],
            Table::Stock => vec![
                n("s_i_id", 4),
                n("s_w_id", 4),
                n("s_quantity", 2),
                n("s_dist_01", 24),
                n("s_dist_02", 24),
                n("s_dist_03", 24),
                n("s_dist_04", 24),
                n("s_dist_05", 24),
                n("s_dist_06", 24),
                n("s_dist_07", 24),
                n("s_dist_08", 24),
                n("s_dist_09", 24),
                n("s_dist_10", 24),
                n("s_ytd", 8),
                n("s_order_cnt", 2),
                n("s_remote_cnt", 2),
                n("s_data", 50),
            ],
            Table::Supplier => vec![
                n("su_suppkey", 4),
                n("su_name", 25),
                n("su_address", 40),
                n("su_nationkey", 1),
                n("su_phone", 15),
                n("su_acctbal", 8),
                n("su_comment", 100),
            ],
            Table::Nation => vec![
                n("n_nationkey", 1),
                n("n_name", 25),
                n("n_regionkey", 1),
                n("n_comment", 152),
            ],
            Table::Region => vec![n("r_regionkey", 1), n("r_name", 25), n("r_comment", 152)],
        };
        TableSchema::new(self.name(), cols)
    }

    /// Finds the table owning a column by its TPC-C prefix convention.
    pub fn of_column(column: &str) -> Option<Table> {
        ALL_TABLES
            .into_iter()
            .find(|t| t.schema().index_of(column).is_some())
    }
}

/// Total bytes of the database at `scale` (data only, row-store lower
/// bound). The paper's full-scale population occupies ~20 GB (§7.1).
pub fn database_bytes(scale: f64) -> u64 {
    ALL_TABLES
        .into_iter()
        .map(|t| t.rows_at_scale(scale) * t.schema().row_width() as u64)
        .sum()
}

/// Widest column the layout generator promotes to a key. Wider columns
/// are long (variable-width) text — the paper stores those "using
/// traditional storage methods, such as length-prefixed encoding or
/// separate metadata structures" (§4.1.2) and scans them through the CPU,
/// so they stay byte-divisible normal columns here.
pub const MAX_KEY_WIDTH: u32 = 32;

/// Returns the schema of `table` with exactly the given columns marked as
/// keys (columns not in the list — and columns wider than
/// [`MAX_KEY_WIDTH`] — become Normal).
pub fn schema_with_keys(table: Table, keys: &[&str]) -> TableSchema {
    let all = table.schema();
    let filtered: Vec<&str> = keys
        .iter()
        .copied()
        .filter(|k| {
            all.index_of(k)
                .map(|i| all.column(i).width <= MAX_KEY_WIDTH)
                .unwrap_or(false)
        })
        .collect();
    all.with_keys(&filtered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_tables_with_unique_names() {
        let mut names: Vec<_> = ALL_TABLES.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    /// §7.1 row counts.
    #[test]
    fn paper_row_counts() {
        assert_eq!(Table::Item.rows_full_scale(), 20_000_000);
        assert_eq!(Table::Stock.rows_full_scale(), 20_000_000);
        assert_eq!(Table::Customer.rows_full_scale(), 6_000_000);
        assert_eq!(Table::Order.rows_full_scale(), 6_000_000);
        assert_eq!(Table::OrderLine.rows_full_scale(), 60_000_000);
        assert_eq!(Table::NewOrder.rows_full_scale(), 60_000_000);
        assert_eq!(Table::History.rows_full_scale(), 6_000_000);
    }

    /// §7.1: "The tables occupy 20 GB of memory storage." Our fixed-width
    /// encodings are somewhat leaner than the authors' (e.g. c_data is
    /// stored at 152 B, the paper's maximum column width, rather than
    /// TPC-C's 500-char declaration), so we accept the same order of
    /// magnitude.
    #[test]
    fn full_scale_is_about_20gb() {
        let gb = database_bytes(1.0) as f64 / (1u64 << 30) as f64;
        assert!((10.0..30.0).contains(&gb), "database is {gb:.1} GiB");
    }

    /// §8: column widths span 1–2 bytes up to 152 bytes.
    #[test]
    fn width_range_matches_paper() {
        let widths: Vec<u32> = ALL_TABLES
            .into_iter()
            .flat_map(|t| {
                t.schema()
                    .columns()
                    .iter()
                    .map(|c| c.width)
                    .collect::<Vec<_>>()
            })
            .collect();
        assert_eq!(widths.iter().copied().max(), Some(152));
        assert_eq!(widths.iter().copied().min(), Some(1));
    }

    #[test]
    fn orderline_amount_is_8_bytes() {
        // §8 calls out ORDERLINE.amount as 8 bytes.
        let s = Table::OrderLine.schema();
        let i = s.index_of("ol_amount").unwrap();
        assert_eq!(s.column(i).width, 8);
    }

    #[test]
    fn scaling_is_proportional_with_floor() {
        assert_eq!(Table::OrderLine.rows_at_scale(0.01), 600_000);
        assert_eq!(Table::Region.rows_at_scale(0.0001), 1); // floor at 1
    }

    #[test]
    fn of_column_finds_owner() {
        assert_eq!(Table::of_column("ol_amount"), Some(Table::OrderLine));
        assert_eq!(Table::of_column("c_state"), Some(Table::Customer));
        assert_eq!(Table::of_column("nope"), None);
    }

    #[test]
    fn schema_with_keys_classifies() {
        let s = schema_with_keys(Table::OrderLine, &["ol_amount", "ol_quantity"]);
        assert_eq!(s.key_indices().len(), 2);
        use pushtap_format::ColumnKind;
        let i = s.index_of("ol_amount").unwrap();
        assert_eq!(s.column(i).kind, ColumnKind::Key);
    }

    #[test]
    fn all_columns_start_normal() {
        for t in ALL_TABLES {
            assert!(t.schema().key_indices().is_empty(), "{}", t.name());
        }
    }
}
