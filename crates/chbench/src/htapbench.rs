//! An HTAPBench-style workload used for the format-generality experiment
//! (§7.2: "To demonstrate the generality of our format algorithm, we also
//! tested it on HTAPBench. The results show that we achieve 57%/98%
//! CPU/PIM bandwidth utilization when th=0.55").
//!
//! HTAPBench (Coelho et al.) drives a TPC-C-like transactional schema with
//! TPC-H-like decision-support queries. We model its characteristic width
//! distribution — a mix of narrow numeric business keys and wide
//! descriptive text — with a distinct column population and query set so
//! the layout generator is exercised on a second, independent workload.

use pushtap_format::{Column, TableSchema};

/// The HTAPBench-style fact/dimension tables.
pub fn tables() -> Vec<TableSchema> {
    let n = |name: &str, w: u32| Column::normal(name, w);
    vec![
        TableSchema::new(
            "ht_sales",
            vec![
                n("sa_id", 8),
                n("sa_cust_id", 4),
                n("sa_prod_id", 4),
                n("sa_store_id", 2),
                n("sa_qty", 2),
                n("sa_price", 4),
                n("sa_total", 8),
                n("sa_ts", 8),
                n("sa_channel", 1),
                n("sa_note", 64),
            ],
        ),
        TableSchema::new(
            "ht_product",
            vec![
                n("pr_id", 4),
                n("pr_cat_id", 2),
                n("pr_price", 4),
                n("pr_cost", 4),
                n("pr_name", 32),
                n("pr_descr", 128),
            ],
        ),
        TableSchema::new(
            "ht_customer",
            vec![
                n("cu_id", 4),
                n("cu_segment", 1),
                n("cu_region", 1),
                n("cu_balance", 8),
                n("cu_since", 8),
                n("cu_name", 24),
                n("cu_address", 48),
            ],
        ),
        TableSchema::new(
            "ht_store",
            vec![
                n("st_id", 2),
                n("st_region", 1),
                n("st_sqft", 4),
                n("st_name", 24),
            ],
        ),
    ]
}

/// Column footprints of the HTAPBench-style decision-support queries.
pub fn query_footprints() -> Vec<Vec<&'static str>> {
    vec![
        // Revenue by channel over a time window.
        vec!["sa_channel", "sa_total", "sa_ts"],
        // Product-category margins.
        vec![
            "sa_prod_id",
            "sa_qty",
            "sa_price",
            "pr_id",
            "pr_cat_id",
            "pr_cost",
        ],
        // Customer-segment spend.
        vec![
            "sa_cust_id",
            "sa_total",
            "cu_id",
            "cu_segment",
            "cu_balance",
        ],
        // Store/region rollup.
        vec!["sa_store_id", "sa_total", "sa_ts", "st_id", "st_region"],
        // Repeat-purchase frequency.
        vec!["sa_cust_id", "sa_ts", "sa_id"],
    ]
}

/// Key-column names per table for the full query set.
pub fn key_columns() -> Vec<(usize, Vec<&'static str>)> {
    let tables = tables();
    let mut out = Vec::new();
    for (ti, t) in tables.iter().enumerate() {
        let mut keys = Vec::new();
        for fp in query_footprints() {
            for col in fp {
                if t.index_of(col).is_some() && !keys.contains(&col) {
                    keys.push(col);
                }
            }
        }
        if !keys.is_empty() {
            out.push((ti, keys));
        }
    }
    out
}

/// Scan weight of a column: how many queries touch it.
pub fn scan_weight(column: &str) -> f64 {
    query_footprints()
        .iter()
        .filter(|fp| fp.contains(&column))
        .count() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_tables_with_distinct_columns() {
        let ts = tables();
        assert_eq!(ts.len(), 4);
        for fp in query_footprints() {
            for col in fp {
                let owners = ts.iter().filter(|t| t.index_of(col).is_some()).count();
                assert_eq!(owners, 1, "column {col} should have one owner");
            }
        }
    }

    #[test]
    fn key_columns_are_narrow_business_keys() {
        for (ti, keys) in key_columns() {
            let t = &tables()[ti];
            for k in keys {
                let w = t.column(t.index_of(k).unwrap()).width;
                assert!(w <= 8, "key {k} is {w} bytes");
            }
        }
    }

    #[test]
    fn weights_are_positive_for_hot_columns() {
        assert!(scan_weight("sa_total") >= 3.0);
        assert_eq!(scan_weight("pr_descr"), 0.0);
    }
}
