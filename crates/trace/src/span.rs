//! Lifecycle spans and the sink trait the engines emit them through.
//!
//! A [`Span`] is one timestamped interval (or instant) in a routed
//! transaction's life, stamped with the shard (`track`) it happened on,
//! the lifecycle [`Phase`], the transaction's pinned commit timestamp,
//! and — under the pipelined coordinator — the 1-based wave it ran in.
//! Times are raw simulated picoseconds (the engine crates' `Ps` values
//! via `.ps()`), keeping this crate zero-dependency.
//!
//! Emission goes through the [`TraceSink`] trait: the engines hold an
//! `Arc<dyn TraceSink>` that defaults to [`NullSink`], whose
//! [`TraceSink::enabled`] returns `false` so every hot-path emission
//! site is one branch and no allocation. Benches and tests install a
//! [`MemSink`] to collect spans for export or reconciliation.

use std::fmt;
use std::sync::Mutex;

/// A phase of a routed transaction's lifecycle (the span taxonomy).
///
/// Interval phases have `start < end` in general; the decision/queue
/// phases can legally be zero-length (a delivery that arrived while the
/// engine was still busy stalls it for nothing). Instant phases always
/// have `start == end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Instant: the router stamped the transaction and assigned its
    /// home shard.
    Routed,
    /// Interval: time spent queued behind earlier work on the home
    /// shard (serial local queues, behind earlier wave items, or — in
    /// the open-loop front-end — the real inbox wait from arrival to
    /// wave dispatch).
    Queued,
    /// Instant: an open-loop arrival turned away at a full home-shard
    /// inbox (admission control; counted backpressure, never a silent
    /// drop).
    Rejected,
    /// Interval: one engine-level prepare attempt that succeeded
    /// (applies to one-phase local commits too — they ride the same
    /// prepare machinery).
    Prepare,
    /// Interval: one engine-level prepare attempt that hit `DeltaFull`
    /// and rolled back (this engine voted "no").
    PrepareAbort,
    /// Interval: a shard's whole prepare pass over one wave
    /// (pipelined).
    WavePrepare,
    /// Interval: the home shard's wait for the vote round-trip of one
    /// cross-shard transaction (possibly zero under overlap).
    VoteBarrier,
    /// Interval: a shard's whole decision pass over one wave
    /// (pipelined).
    WaveDecide,
    /// Interval: one participant's wait for a decision delivery
    /// (possibly zero under overlap).
    Decide,
    /// Interval: one transaction's two-phase-commit participation on
    /// one shard (home or participant side; covers the prepare
    /// attempt).
    TwoPc,
    /// Instant: a commit decision applied (scope resolved).
    Commit,
    /// Instant: an abort decision applied (pinned undo replayed).
    Abort,
    /// Instant: the coordinator re-ran an aborted transaction.
    Retry,
    /// Instant: the serial coordinator barrier-flushed the involved
    /// shards' queues before a 2PC.
    Barrier,
    /// Interval: a defragmentation pause (OLTP stalled on this shard).
    DefragStall,
    /// Interval: an incremental garbage-collection pass (version-chain
    /// compaction, delta-slot recycling, commit-log trimming below the
    /// oracle's eligible cut) — much shorter than a full defrag stall.
    GcPass,
    /// Instant: one effect record appended to the shard's write-ahead
    /// log (volatile until the next group-commit force).
    WalAppend,
    /// Interval: one group-commit force barrier — the shard's pending
    /// log bytes pushed to durable media, paying the configured force
    /// latency once for the whole wave.
    GroupCommit,
    /// Interval: the shard's crash-recovery replay (scanning its effect
    /// log and re-committing decided records at their pinned
    /// timestamps).
    Recovery,
}

impl Phase {
    /// The span's display name (the Chrome-trace event name).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Routed => "routed",
            Phase::Queued => "queued",
            Phase::Rejected => "rejected",
            Phase::Prepare => "prepare",
            Phase::PrepareAbort => "prepare_abort",
            Phase::WavePrepare => "wave_prepare",
            Phase::VoteBarrier => "vote_barrier",
            Phase::WaveDecide => "wave_decide",
            Phase::Decide => "decide",
            Phase::TwoPc => "2pc",
            Phase::Commit => "commit",
            Phase::Abort => "abort",
            Phase::Retry => "retry",
            Phase::Barrier => "barrier",
            Phase::DefragStall => "defrag_stall",
            Phase::GcPass => "gc_pass",
            Phase::WalAppend => "wal_append",
            Phase::GroupCommit => "group_commit",
            Phase::Recovery => "recovery",
        }
    }

    /// Whether this phase is a zero-length instant.
    pub fn is_instant(self) -> bool {
        matches!(
            self,
            Phase::Routed
                | Phase::Rejected
                | Phase::Commit
                | Phase::Abort
                | Phase::Retry
                | Phase::Barrier
                | Phase::WalAppend
        )
    }

    /// The per-shard lane (Chrome-trace `tid`) the phase renders on:
    /// engine work (0), coordinator protocol (1), defragmentation (2),
    /// queueing (3), durability (4). Queue spans overlap freely (many
    /// transactions wait at once), so the export renders them as async
    /// events on their own lane rather than as nested slices.
    pub fn lane(self) -> u32 {
        match self {
            Phase::Prepare | Phase::PrepareAbort => 0,
            Phase::Routed
            | Phase::WavePrepare
            | Phase::VoteBarrier
            | Phase::WaveDecide
            | Phase::Decide
            | Phase::TwoPc
            | Phase::Commit
            | Phase::Abort
            | Phase::Retry
            | Phase::Barrier => 1,
            Phase::DefragStall | Phase::GcPass => 2,
            Phase::Queued | Phase::Rejected => 3,
            Phase::WalAppend | Phase::GroupCommit | Phase::Recovery => 4,
        }
    }
}

/// One recorded lifecycle event (see [`Phase`] for the taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// The shard the event happened on (Chrome-trace `pid`).
    pub track: u32,
    /// Lifecycle phase.
    pub phase: Phase,
    /// The transaction's pinned commit timestamp (`Ts.0`); 0 for
    /// events not tied to one transaction (e.g. defrag stalls).
    pub txn: u64,
    /// 1-based wave the event belonged to under the pipelined
    /// coordinator; 0 outside wave execution.
    pub wave: u64,
    /// Start time, simulated picoseconds on the shard's clock.
    pub start: u64,
    /// End time (`== start` for instants).
    pub end: u64,
}

impl Span {
    /// An interval span.
    pub fn new(track: u32, phase: Phase, txn: u64, start: u64, end: u64) -> Span {
        Span {
            track,
            phase,
            txn,
            wave: 0,
            start,
            end,
        }
    }

    /// An instant span (`end == start`).
    pub fn instant(track: u32, phase: Phase, txn: u64, at: u64) -> Span {
        Span::new(track, phase, txn, at, at)
    }

    /// The same span tagged with a 1-based wave id.
    pub fn in_wave(mut self, wave: u64) -> Span {
        self.wave = wave;
        self
    }

    /// Duration in picoseconds (0 for instants).
    pub fn dur(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// Where lifecycle spans go.
///
/// The default implementation of [`TraceSink::enabled`] returns `true`;
/// emission sites guard with it so a disabled sink ([`NullSink`]) costs
/// one branch and zero allocation on the hot path.
///
/// # Examples
///
/// A sink that only counts — the no-op default of `enabled` means
/// emitters will still call `record`:
///
/// ```
/// use pushtap_trace::{Phase, Span, TraceSink};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// #[derive(Debug, Default)]
/// struct Counter(AtomicU64);
///
/// impl TraceSink for Counter {
///     // `enabled` defaults to true: no override needed.
///     fn record(&self, _span: Span) {
///         self.0.fetch_add(1, Ordering::Relaxed);
///     }
/// }
///
/// let sink = Counter::default();
/// assert!(sink.enabled());
/// sink.record(Span::instant(0, Phase::Commit, 1, 42));
/// assert_eq!(sink.0.load(Ordering::Relaxed), 1);
/// ```
pub trait TraceSink: fmt::Debug + Send + Sync {
    /// Whether emission sites should bother building spans. Defaults to
    /// `true`; [`NullSink`] overrides it to `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Accepts one span. Called from concurrently-running shard
    /// threads, so implementations must synchronise internally.
    fn record(&self, span: Span);
}

/// The default sink: drops everything and reports itself disabled, so
/// instrumented hot paths skip span construction entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _span: Span) {}
}

/// An in-memory sink for benches and tests: collects every span behind
/// a mutex (shard threads emit concurrently).
#[derive(Debug, Default)]
pub struct MemSink {
    spans: Mutex<Vec<Span>>,
}

impl MemSink {
    /// An empty sink.
    pub fn new() -> MemSink {
        MemSink::default()
    }

    /// Takes every span recorded so far, leaving the sink empty.
    pub fn take(&self) -> Vec<Span> {
        std::mem::take(&mut *self.spans.lock().expect("sink poisoned"))
    }

    /// A copy of every span recorded so far.
    pub fn snapshot(&self) -> Vec<Span> {
        self.spans.lock().expect("sink poisoned").clone()
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.lock().expect("sink poisoned").len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for MemSink {
    fn record(&self, span: Span) {
        self.spans.lock().expect("sink poisoned").push(span);
    }
}

/// The peak number of *distinct transactions* with a [`Phase::TwoPc`]
/// span open at the same moment within one wave, maximised over waves.
/// Returns `(wave, peak)` for the best wave (`(0, 0)` if no 2PC span
/// was recorded). This is the "≥ 2 concurrently open 2PC spans in one
/// wave" overlap check the bench and the reconciliation test assert.
///
/// A transaction's home and participant spans are merged into one
/// interval per (wave, txn) before the sweep, so a single cross-shard
/// transaction never counts as overlapping itself.
pub fn two_pc_overlap_peak(spans: &[Span]) -> (u64, usize) {
    use std::collections::BTreeMap;
    // (wave, txn) -> merged interval.
    let mut merged: BTreeMap<(u64, u64), (u64, u64)> = BTreeMap::new();
    for s in spans {
        if s.phase != Phase::TwoPc || s.wave == 0 {
            continue;
        }
        let e = merged.entry((s.wave, s.txn)).or_insert((s.start, s.end));
        e.0 = e.0.min(s.start);
        e.1 = e.1.max(s.end);
    }
    let mut best = (0u64, 0usize);
    let mut wave_events: BTreeMap<u64, Vec<(u64, i64)>> = BTreeMap::new();
    for (&(wave, _), &(start, end)) in &merged {
        let ev = wave_events.entry(wave).or_default();
        ev.push((start, 1));
        // Close strictly after the end so touching intervals (end ==
        // next start) still count as concurrent at the boundary point.
        ev.push((end.saturating_add(1), -1));
    }
    for (wave, mut events) in wave_events {
        events.sort_unstable();
        let mut open = 0i64;
        let mut peak = 0i64;
        for (_, d) in events {
            open += d;
            peak = peak.max(open);
        }
        if peak as usize > best.1 {
            best = (wave, peak as usize);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        let s = NullSink;
        assert!(!s.enabled());
        s.record(Span::instant(0, Phase::Commit, 1, 0)); // no-op
    }

    #[test]
    fn mem_sink_collects_and_takes() {
        let s = MemSink::new();
        assert!(s.enabled());
        assert!(s.is_empty());
        s.record(Span::new(1, Phase::Prepare, 7, 10, 20));
        s.record(Span::instant(1, Phase::Commit, 7, 20));
        assert_eq!(s.len(), 2);
        let spans = s.take();
        assert!(s.is_empty());
        assert_eq!(spans[0].dur(), 10);
        assert_eq!(spans[1].dur(), 0);
        assert!(spans[1].phase.is_instant());
    }

    #[test]
    fn overlap_peak_counts_distinct_txns_per_wave() {
        let spans = [
            // Wave 1: txn 1 on two shards (merged — must not self-count),
            // overlapping txn 2.
            Span::new(0, Phase::TwoPc, 1, 0, 100).in_wave(1),
            Span::new(1, Phase::TwoPc, 1, 40, 90).in_wave(1),
            Span::new(2, Phase::TwoPc, 2, 50, 150).in_wave(1),
            // Wave 2: two disjoint txns — no overlap.
            Span::new(0, Phase::TwoPc, 3, 200, 210).in_wave(2),
            Span::new(1, Phase::TwoPc, 4, 220, 230).in_wave(2),
            // Serial-mode 2PC (wave 0) is excluded.
            Span::new(0, Phase::TwoPc, 5, 0, 1_000),
        ];
        assert_eq!(two_pc_overlap_peak(&spans), (1, 2));
        assert_eq!(two_pc_overlap_peak(&spans[3..5]), (2, 1));
        assert_eq!(two_pc_overlap_peak(&[]), (0, 0));
    }
}
