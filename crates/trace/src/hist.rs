//! Log-bucketed latency histograms (HDR-style) over simulated
//! picosecond durations.
//!
//! The bucketing keeps a fixed **relative** error: values below
//! [`LINEAR_MAX`] are exact (one bucket per value), and every octave
//! above it is split into [`SUB_BUCKETS`] equal sub-buckets, so a
//! bucket's width is at most `1/64` of its value and the midpoint
//! representative is within `~0.8 %` of any sample it absorbed. That is
//! the classic HdrHistogram layout with 6 significant bits, sized for
//! the full `u64` picosecond range in at most a few thousand buckets.
//!
//! Histograms are *mergeable*: per-shard (or per-thread) partials sum
//! bucket-by-bucket, exactly like the scatter-gather query partials, so
//! percentile reports survive the same fan-in the rest of the metrics
//! use. Merge is associative and commutative — the unit tests assert it.

/// Values below this record exactly (one bucket per integer value).
const LINEAR_MAX: u64 = 128;

/// Sub-buckets per octave above [`LINEAR_MAX`]: 64 ⇒ bucket width ≤
/// 1/64 of the value ⇒ midpoint error ≤ ~0.8 %.
const SUB_BUCKETS: u64 = 64;

/// Bucket index of `v` (total order, contiguous across octaves).
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        let e = 63 - u64::from(v.leading_zeros());
        let shift = e - 6;
        (LINEAR_MAX + (e - 7) * SUB_BUCKETS + ((v >> shift) - SUB_BUCKETS)) as usize
    }
}

/// The representative (midpoint) value of bucket `i` — the inverse of
/// [`bucket_index`] up to the bucket's width.
fn bucket_value(i: usize) -> u64 {
    let i = i as u64;
    if i < LINEAR_MAX {
        i
    } else {
        let k = i - LINEAR_MAX;
        let e = 7 + k / SUB_BUCKETS;
        let sub = k % SUB_BUCKETS;
        let shift = e - 6;
        let low = (SUB_BUCKETS + sub) << shift;
        low + (1u64 << shift) / 2
    }
}

/// A mergeable log-bucketed histogram of `u64` samples (simulated
/// picoseconds in this workspace), with ~1 % relative quantile error.
///
/// Recording is O(1); the bucket vector grows lazily to the highest
/// bucket touched, so an empty or low-valued histogram stays tiny.
/// `min`/`max` are tracked exactly and quantiles clamp to them, so the
/// tails never report a value outside what was actually observed.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Percentile summary of one [`Histogram`] — the shape every report
/// surface exposes.
///
/// All values are simulated picoseconds. An empty histogram summarises
/// to all zeros (`count == 0` tells the consumer "no samples" apart
/// from "all samples were zero").
///
/// # Examples
///
/// ```
/// use pushtap_trace::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let stats = h.stats();
/// assert_eq!(stats.count, 1000);
/// assert_eq!(stats.max, 1000);
/// // ~1% relative error on every quantile:
/// assert!((stats.p50 as f64 - 500.0).abs() <= 500.0 * 0.01 + 1.0);
/// assert!((stats.p99 as f64 - 990.0).abs() <= 990.0 * 0.01 + 1.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean (exact — the histogram keeps a full-precision
    /// sum).
    pub mean: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// The largest sample (exact).
    pub max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let i = bucket_index(v);
        if i >= self.counts.len() {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// The largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The smallest sample recorded (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact arithmetic mean (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / u128::from(self.count)) as u64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) with the bucketing's ~1 %
    /// relative error, clamped to the exact observed `[min, max]`.
    /// Returns 0 for an empty histogram — percentiles of nothing are
    /// reported as zero, consistently with [`Histogram::mean`].
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Nearest-rank definition: the smallest sample such that at
        // least ⌈q·n⌉ samples are ≤ it (rank clamped to [1, n]).
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_value(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The standard percentile summary.
    pub fn stats(&self) -> LatencyStats {
        LatencyStats {
            count: self.count,
            mean: self.mean(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            max: self.max(),
        }
    }

    /// Folds `other` into this histogram (bucket-wise sum; exact
    /// min/max/sum/count combine). Associative and commutative, so
    /// per-shard partials can merge in any fan-in order.
    pub fn merge(&mut self, other: &Histogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl PartialEq for Histogram {
    /// Structural equality up to trailing empty buckets (merging in a
    /// different order may size the bucket vector differently).
    fn eq(&self, other: &Histogram) -> bool {
        let trim = |c: &[u64]| {
            let end = c.iter().rposition(|&x| x != 0).map_or(0, |p| p + 1);
            c[..end].to_vec()
        };
        self.count == other.count
            && self.sum == other.sum
            && self.min() == other.min()
            && self.max == other.max
            && trim(&self.counts) == trim(&other.counts)
    }
}

impl Eq for Histogram {}

/// Formats a picosecond duration with an adaptive unit (`ps`, `ns`,
/// `us`, `ms`, `s`) — the human-readable form the bench tables print.
pub fn fmt_ps(ps: u64) -> String {
    match ps {
        0..=9_999 => format!("{ps}ps"),
        10_000..=999_999 => format!("{:.1}ns", ps as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}us", ps as f64 / 1e6),
        1_000_000_000..=999_999_999_999 => format!("{:.2}ms", ps as f64 / 1e9),
        _ => format!("{:.3}s", ps as f64 / 1e12),
    }
}

impl std::fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "p50 {} p90 {} p99 {} p999 {} max {} (mean {}, n={})",
            fmt_ps(self.p50),
            fmt_ps(self.p90),
            fmt_ps(self.p99),
            fmt_ps(self.p999),
            fmt_ps(self.max),
            fmt_ps(self.mean),
            self.count,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic xorshift so the accuracy test needs no RNG
    /// dependency.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn bucket_roundtrip_is_monotone_and_tight() {
        let mut last = 0usize;
        for v in [
            0u64,
            1,
            127,
            128,
            129,
            255,
            256,
            1 << 20,
            (1 << 20) + 12_345,
            u64::MAX >> 1,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(i >= last || v < 256, "indices must not decrease");
            last = last.max(i);
            let rep = bucket_value(i);
            let err = rep.abs_diff(v) as f64;
            assert!(
                err <= v as f64 / 128.0 + 1.0,
                "bucket rep {rep} too far from {v}"
            );
        }
        // Contiguity across the first octave boundary.
        assert_eq!(bucket_index(255) + 1, bucket_index(256));
    }

    #[test]
    fn quantiles_match_exact_sort_within_bound() {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        // A skewed mix: mostly small values with a long tail, like
        // commit latencies.
        let samples: Vec<u64> = (0..10_000)
            .map(|_| {
                let r = xorshift(&mut state);
                let base = r % 50_000;
                if r.is_multiple_of(100) {
                    base * 997 + 1_000_000
                } else {
                    base
                }
            })
            .collect();
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let got = h.quantile(q);
            let bound = exact as f64 / 100.0 + 1.0;
            assert!(
                (got as f64 - exact as f64).abs() <= bound,
                "q={q}: got {got}, exact {exact} (bound {bound})"
            );
        }
        assert_eq!(h.max(), *sorted.last().unwrap());
        assert_eq!(h.min(), sorted[0]);
        let exact_mean = sorted.iter().map(|&v| u128::from(v)).sum::<u128>()
            / u128::try_from(sorted.len()).unwrap();
        assert_eq!(u128::from(h.mean()), exact_mean);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mut state = 42u64;
        let parts: Vec<Histogram> = (0..3)
            .map(|_| {
                let mut h = Histogram::new();
                for _ in 0..500 {
                    h.record(xorshift(&mut state) % 1_000_000);
                }
                h
            })
            .collect();
        let (a, b, c) = (&parts[0], &parts[1], &parts[2]);
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = a.clone();
        left.merge(b);
        left.merge(c);
        let mut bc = b.clone();
        bc.merge(c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        // a ⊕ b == b ⊕ a
        let mut ab = a.clone();
        ab.merge(b);
        let mut ba = b.clone();
        ba.merge(a);
        assert_eq!(ab, ba);
        assert_eq!(ab.stats(), ba.stats());
        assert_eq!(left.count(), 1500);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0, "p50 of zero samples is 0");
        assert_eq!(
            h.stats(),
            LatencyStats::default(),
            "empty stats are all-zero"
        );
        // Merging an empty histogram is the identity.
        let mut m = Histogram::new();
        m.record(7);
        let before = m.clone();
        m.merge(&h);
        assert_eq!(m, before);
    }

    #[test]
    fn display_is_humane() {
        let mut h = Histogram::new();
        h.record(1_500_000); // 1.5 us
        let s = h.stats().to_string();
        assert!(s.contains("us"), "{s}");
        assert!(s.contains("n=1"), "{s}");
        assert_eq!(fmt_ps(0), "0ps");
        assert_eq!(fmt_ps(12_000), "12.0ns");
    }
}
