//! Chrome-trace-format export (and a self-check validator) for recorded
//! spans.
//!
//! [`render`] serialises spans to the Trace Event Format JSON that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly: one *process* per shard, one *thread* per lane (engine /
//! coordinator / defrag / queue), complete (`"X"`) events for
//! intervals, instant (`"i"`) events for instants, and async
//! (`"b"`/`"e"`) event pairs for queue spans — which overlap freely and
//! would break slice nesting as `"X"` events. Timestamps convert from
//! simulated picoseconds to the format's microseconds with fractional
//! precision preserved.
//!
//! [`validate`] re-parses an emitted document with a minimal
//! dependency-free JSON parser and checks the structural invariants CI
//! smokes: well-formed JSON, required keys per event type, non-negative
//! times, monotone `ts` per `(pid, tid)` track, and matched async
//! begin/end pairs. It exists because this workspace vendors no JSON
//! parser — the validator doubles as the machine check that the
//! hand-rendered output stays loadable.

use crate::span::{Phase, Span};

/// Lane names rendered as Chrome-trace thread names, indexed by
/// [`Phase::lane`].
const LANES: [&str; 5] = ["engine", "coordinator", "defrag", "queue", "durability"];

fn push_ts(out: &mut String, ps: u64) {
    // Picoseconds → microseconds with six fractional digits: exact for
    // any u64 (1 ps = 1e-6 us), rendered without float rounding.
    let us = ps / 1_000_000;
    let frac = ps % 1_000_000;
    out.push_str(&format!("{us}.{frac:06}"));
}

/// One serialisable trace event plus its sort key: `(pid, tid, ts,
/// longest-first)` so parents precede contained children at equal
/// start times and the per-track `ts` monotonicity [`validate`] checks
/// holds by construction, whatever order the shard threads emitted in.
struct Ev {
    pid: u32,
    tid: u32,
    ts: u64,
    rdur: std::cmp::Reverse<u64>,
    body: String,
}

fn event(pid: u32, tid: u32, ts: u64, dur: u64, body: String) -> Ev {
    Ev {
        pid,
        tid,
        ts,
        rdur: std::cmp::Reverse(dur),
        body,
    }
}

fn ts_string(ps: u64) -> String {
    let mut s = String::new();
    push_ts(&mut s, ps);
    s
}

/// Renders spans as a Chrome-trace JSON document (see the module docs
/// for the event mapping).
pub fn render(spans: &[Span]) -> String {
    let mut events: Vec<Ev> = Vec::with_capacity(spans.len() + 8);
    for s in spans {
        let (pid, tid) = (s.track, s.phase.lane());
        let (name, cat) = (s.phase.name(), LANES[tid as usize]);
        let ts = ts_string(s.start);
        if s.phase == Phase::Queued {
            // Async pair: queue spans of different transactions overlap
            // freely, which "X" slice nesting cannot represent.
            events.push(event(
                pid,
                tid,
                s.start,
                s.dur(),
                format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"b\",\"id\":{},\
                     \"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\
                     \"args\":{{\"txn\":{},\"wave\":{}}}}}",
                    s.txn, s.txn, s.wave
                ),
            ));
            events.push(event(
                pid,
                tid,
                s.end,
                0,
                format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"e\",\"id\":{},\
                     \"pid\":{pid},\"tid\":{tid},\"ts\":{}}}",
                    s.txn,
                    ts_string(s.end)
                ),
            ));
        } else if s.phase.is_instant() {
            events.push(event(
                pid,
                tid,
                s.start,
                0,
                format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\
                     \"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\
                     \"args\":{{\"txn\":{},\"wave\":{}}}}}",
                    s.txn, s.wave
                ),
            ));
        } else {
            events.push(event(
                pid,
                tid,
                s.start,
                s.dur(),
                format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\
                     \"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{},\
                     \"args\":{{\"txn\":{},\"wave\":{}}}}}",
                    ts_string(s.dur()),
                    s.txn,
                    s.wave
                ),
            ));
        }
    }
    events.sort_by_key(|a| (a.pid, a.tid, a.ts, a.rdur));

    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    // Metadata: name each shard's process and each lane's thread so the
    // viewer shows "shard N" groups with readable lanes.
    let tracks: std::collections::BTreeSet<(u32, u32)> =
        events.iter().map(|e| (e.pid, e.tid)).collect();
    for &(pid, tid) in &tracks {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"shard {pid}\"}}}},\n"
        ));
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            LANES[tid as usize]
        ));
    }
    for e in events {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&e.body);
    }
    out.push_str(
        "\n],\"displayTimeUnit\":\"ns\",\
                  \"otherData\":{\"generator\":\"pushtap-trace\"}}\n",
    );
    out
}

// ---------------------------------------------------------------------
// A minimal JSON parser — just enough to validate our own output (and
// any structurally similar Chrome trace). No vendored JSON crate
// exists in this workspace, so the validator carries its own.
// ---------------------------------------------------------------------

/// A parsed JSON value (subset: no exponent-heavy number edge cases
/// beyond `f64` parsing).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Obj(Vec<(String, Json)>),
    Arr(Vec<Json>),
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("JSON error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (output is ASCII, but be
                    // tolerant of foreign traces).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("truncated"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }
}

/// What [`validate`] measured while checking a trace document.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChromeStats {
    /// Total events (metadata included).
    pub events: u64,
    /// Complete (`"X"`) interval events.
    pub complete: u64,
    /// Instant (`"i"`) events.
    pub instants: u64,
    /// Matched async (`"b"`/`"e"`) pairs.
    pub async_pairs: u64,
    /// Distinct `(pid, tid)` tracks carrying events.
    pub tracks: u64,
    /// The latest `ts + dur` observed, in microseconds.
    pub max_ts_us: f64,
}

/// Parses `json` as a Chrome-trace document and checks the structural
/// invariants the CI smoke asserts: a top-level `traceEvents` array;
/// every event an object with `name`/`ph`/`pid`/`tid` (and `ts` for
/// non-metadata events); non-negative `ts`, `dur` on `"X"` events;
/// **monotone `ts` per `(pid, tid)` track** in array order; and async
/// `"b"`/`"e"` events matched per `(pid, id)` with `e` never before its
/// `b`. Returns counts for reporting.
///
/// # Errors
///
/// Returns a description of the first malformed construct found.
pub fn validate(json: &str) -> Result<ChromeStats, String> {
    let mut p = Parser::new(json);
    let doc = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    let events = doc
        .get("traceEvents")
        .ok_or("missing \"traceEvents\"")?
        .clone();
    let Json::Arr(events) = events else {
        return Err("\"traceEvents\" is not an array".into());
    };
    let mut stats = ChromeStats::default();
    let mut last_ts: std::collections::BTreeMap<(u64, u64), f64> = Default::default();
    let mut open_async: std::collections::BTreeMap<(u64, u64), u64> = Default::default();
    for (i, ev) in events.iter().enumerate() {
        let ctx = |msg: &str| format!("event {i}: {msg}");
        if !matches!(ev, Json::Obj(_)) {
            return Err(ctx("not an object"));
        }
        stats.events += 1;
        ev.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing \"name\""))?;
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing \"ph\""))?;
        let pid = ev
            .get("pid")
            .and_then(Json::as_f64)
            .ok_or_else(|| ctx("missing \"pid\""))? as u64;
        let tid = ev
            .get("tid")
            .and_then(Json::as_f64)
            .ok_or_else(|| ctx("missing \"tid\""))? as u64;
        if ph == "M" {
            continue; // metadata carries no timestamp
        }
        let ts = ev
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| ctx("missing \"ts\""))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(ctx("negative or non-finite \"ts\""));
        }
        let prev = last_ts.entry((pid, tid)).or_insert(f64::NEG_INFINITY);
        if ts < *prev {
            return Err(ctx(&format!(
                "ts {ts} goes backwards on track ({pid},{tid}) after {prev}"
            )));
        }
        *prev = ts;
        let mut end = ts;
        match ph {
            "X" => {
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| ctx("\"X\" event missing \"dur\""))?;
                if !dur.is_finite() || dur < 0.0 {
                    return Err(ctx("negative \"dur\""));
                }
                end = ts + dur;
                stats.complete += 1;
            }
            "i" => stats.instants += 1,
            "b" => {
                let id = ev
                    .get("id")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| ctx("async event missing \"id\""))?
                    as u64;
                *open_async.entry((pid, id)).or_insert(0) += 1;
            }
            "e" => {
                let id = ev
                    .get("id")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| ctx("async event missing \"id\""))?
                    as u64;
                let open = open_async.entry((pid, id)).or_insert(0);
                if *open == 0 {
                    return Err(ctx(&format!("async end without begin (pid {pid} id {id})")));
                }
                *open -= 1;
                stats.async_pairs += 1;
            }
            other => return Err(ctx(&format!("unknown \"ph\": {other:?}"))),
        }
        stats.max_ts_us = stats.max_ts_us.max(end);
    }
    if let Some(((pid, id), n)) = open_async.iter().find(|(_, &n)| n > 0) {
        return Err(format!("{n} unclosed async span(s) for pid {pid} id {id}"));
    }
    stats.tracks = last_ts.len() as u64;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Phase, Span};

    fn sample_spans() -> Vec<Span> {
        vec![
            Span::instant(0, Phase::Routed, 1, 0),
            Span::new(0, Phase::Queued, 1, 0, 500),
            Span::new(0, Phase::Prepare, 1, 500, 1_500),
            Span::new(0, Phase::TwoPc, 1, 500, 2_000).in_wave(1),
            Span::instant(0, Phase::Commit, 1, 2_000),
            Span::new(1, Phase::DefragStall, 0, 100, 900),
            // Emitted out of order on purpose: render must sort.
            Span::new(0, Phase::WavePrepare, 0, 400, 2_100).in_wave(1),
        ]
    }

    #[test]
    fn rendered_trace_validates() {
        let json = render(&sample_spans());
        let stats = validate(&json).expect("own output must validate");
        assert_eq!(stats.instants, 2);
        assert_eq!(stats.async_pairs, 1, "one queued span");
        // prepare + 2pc + wave_prepare + defrag_stall
        assert_eq!(stats.complete, 4);
        assert!(stats.max_ts_us >= 2_100.0 / 1e6);
        assert!(stats.tracks >= 3);
    }

    #[test]
    fn parent_sorts_before_contained_child() {
        // wave_prepare [400, 2100] contains 2pc [500, 2000] on the same
        // lane: the parent must serialise first for slice nesting.
        let json = render(&sample_spans());
        let wp = json.find("\"wave_prepare\"").expect("wave span present");
        let tp = json.find("\"2pc\"").expect("2pc span present");
        assert!(wp < tp, "parent after child breaks viewer nesting");
    }

    #[test]
    fn empty_trace_is_valid() {
        let json = render(&[]);
        let stats = validate(&json).expect("empty trace");
        assert_eq!(stats.complete + stats.instants + stats.async_pairs, 0);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate("").is_err());
        assert!(validate("{}").is_err(), "no traceEvents");
        assert!(validate("{\"traceEvents\":3}").is_err(), "not an array");
        assert!(
            validate("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err(),
            "missing keys"
        );
        // ts going backwards on one track.
        let bad = "{\"traceEvents\":[\
            {\"name\":\"a\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":0,\"ts\":5.0},\
            {\"name\":\"b\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":0,\"ts\":4.0}]}";
        assert!(validate(bad).unwrap_err().contains("backwards"));
        // Unmatched async begin.
        let dangling = "{\"traceEvents\":[\
            {\"name\":\"q\",\"ph\":\"b\",\"id\":1,\"pid\":0,\"tid\":3,\"ts\":1.0}]}";
        assert!(validate(dangling).unwrap_err().contains("unclosed"));
    }

    #[test]
    fn ts_conversion_is_exact() {
        let mut s = String::new();
        push_ts(&mut s, 1_234_567);
        assert_eq!(s, "1.234567");
        let mut s = String::new();
        push_ts(&mut s, 42);
        assert_eq!(s, "0.000042");
    }
}
