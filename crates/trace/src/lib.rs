//! # pushtap-trace — lifecycle spans, latency histograms, Chrome traces
//!
//! The observability substrate of the PUSHtap workspace: per-transaction
//! lifecycle [`Span`]s emitted through a pluggable [`TraceSink`],
//! HDR-style mergeable [`Histogram`]s with `~1 %` relative quantile
//! error surfaced as [`LatencyStats`], and a [`chrome`] module that
//! exports recorded spans as Chrome-trace-format JSON (loadable in
//! `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)) and
//! validates such documents without any JSON dependency.
//!
//! The crate is deliberately **zero-dependency** and speaks raw `u64`
//! picoseconds: every engine crate can depend on it, and the default
//! [`NullSink`] keeps instrumented hot paths at one branch per
//! emission site. Benches and tests opt in with a [`MemSink`].
//!
//! # Examples
//!
//! Record a few spans, summarise latencies, export a trace:
//!
//! ```
//! use pushtap_trace::{chrome, Histogram, MemSink, Phase, Span, TraceSink};
//!
//! let sink = MemSink::new();
//! if sink.enabled() {
//!     sink.record(Span::new(0, Phase::Prepare, 1, 0, 1_200_000));
//!     sink.record(Span::instant(0, Phase::Commit, 1, 1_200_000));
//! }
//!
//! let mut commit_latency = Histogram::new();
//! commit_latency.record(1_200_000);
//! assert_eq!(commit_latency.stats().count, 1);
//!
//! let json = chrome::render(&sink.take());
//! let stats = chrome::validate(&json).expect("well-formed");
//! assert_eq!(stats.complete, 1);
//! assert_eq!(stats.instants, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chrome;
mod hist;
mod span;

pub use hist::{fmt_ps, Histogram, LatencyStats};
pub use span::{two_pc_overlap_peak, MemSink, NullSink, Phase, Span, TraceSink};
